/**
 * @file
 * Tests of the imc-lint static analyzer, both phases: every per-file
 * rule fires on its fixture at the exact line, the clean fixtures
 * stay silent, category scoping works, suppressions silence only
 * when justified, the determinism-taint pass tracks flows through
 * locals and across the sibling-header seam, the phase-2 project
 * passes (include cycles, layering policy, fault-site and obs-name
 * registry cross-checks) pin their fixtures exactly, the incremental
 * cache returns byte-identical findings to a cold run, and --fix is
 * idempotent.
 *
 * Fixtures live in tests/lint_fixtures/ (excluded from the
 * tree-wide ImcLint.Tree run precisely because they violate on
 * purpose) and are read from IMC_LINT_FIXTURE_DIR. The tree_bad/
 * and tree_suppressed/ subtrees are whole mini-projects driven
 * through analyze_tree.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

using imc::lint::analyze_files;
using imc::lint::analyze_tree;
using imc::lint::Diagnostic;
using imc::lint::fix_content;
using imc::lint::lint_content;
using imc::lint::Options;
using imc::lint::parse_layer_policy;
using imc::lint::ProjectOptions;
using imc::lint::ProjectResult;

std::string
fixture(const std::string& name)
{
    const std::string path =
        std::string(IMC_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
fixture_dir(const std::string& name)
{
    return std::string(IMC_LINT_FIXTURE_DIR) + "/" + name;
}

/** (rule, line) pairs, in report order. */
std::vector<std::pair<std::string, int>>
findings(const std::vector<Diagnostic>& diags)
{
    std::vector<std::pair<std::string, int>> out;
    out.reserve(diags.size());
    for (const Diagnostic& d : diags)
        out.emplace_back(d.rule, d.line);
    return out;
}

/** (rule, path, line) triples, in report order. */
std::vector<std::tuple<std::string, std::string, int>>
project_findings(const ProjectResult& r)
{
    std::vector<std::tuple<std::string, std::string, int>> out;
    out.reserve(r.diags.size());
    for (const Diagnostic& d : r.diags)
        out.emplace_back(d.rule, d.path, d.line);
    return out;
}

using Want = std::vector<std::pair<std::string, int>>;
using WantP = std::vector<std::tuple<std::string, std::string, int>>;

// --- Per-file rules ---------------------------------------------------

TEST(ImcLintRules, DeterminismRandFiresPerSite)
{
    const auto diags = lint_content("src/bad_determinism.cpp",
                                    fixture("src/bad_determinism.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"determinism-rand", 9},
                                     {"determinism-rand", 10},
                                     {"determinism-rand", 12},
                                     {"determinism-rand", 14}}));
}

TEST(ImcLintRules, NumberParseFlagsAtoiAndRawStrtod)
{
    const auto diags = lint_content("src/bad_parse.cpp",
                                    fixture("src/bad_parse.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"banned-number-parse", 6},
                                     {"banned-number-parse", 8}}));
}

TEST(ImcLintRules, PrintfBannedInLibraryOnly)
{
    const std::string content = fixture("src/bad_printf.cpp");
    const auto in_src = lint_content("src/bad_printf.cpp", content);
    EXPECT_EQ(findings(in_src), (Want{{"banned-printf", 5}}));
    // The same code in a bench harness is allowed to print.
    const auto in_bench =
        lint_content("bench/bad_printf.cpp", content);
    EXPECT_TRUE(in_bench.empty());
}

TEST(ImcLintRules, NewDeleteFlagsNakedButNotDeletedFunctions)
{
    const auto diags = lint_content("src/bad_new_delete.cpp",
                                    fixture("src/bad_new_delete.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"banned-new-delete", 5},
                                     {"banned-new-delete", 6}}));
}

TEST(ImcLintRules, ConfigErrorNeedsContext)
{
    const auto diags =
        lint_content("src/bad_config_error.cpp",
                     fixture("src/bad_config_error.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"config-error-context", 8}}));
}

TEST(ImcLintRules, HeaderGuardMustMatchPath)
{
    const auto diags = lint_content("src/bad_guard.hpp",
                                    fixture("src/bad_guard.hpp"));
    ASSERT_EQ(findings(diags), (Want{{"header-guard", 1}}));
    EXPECT_NE(diags[0].message.find("IMC_BAD_GUARD_HPP"),
              std::string::npos);
}

TEST(ImcLintRules, IncludeOrderRejectsInterleavedGroups)
{
    const auto diags =
        lint_content("src/bad_include_order.cpp",
                     fixture("src/bad_include_order.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"include-order", 6}}));
}

TEST(ImcLintRules, ObsGateOnlyInLibraryCode)
{
    const std::string content = fixture("src/bad_obs.cpp");
    const auto in_src = lint_content("src/bad_obs.cpp", content);
    EXPECT_EQ(findings(in_src),
              (Want{{"obs-gate", 9}, {"obs-gate", 10}}));
    // Tests may exercise the obs API directly.
    const auto in_tests = lint_content("tests/bad_obs.cpp", content);
    EXPECT_TRUE(in_tests.empty());
}

TEST(ImcLintRules, FaultGateOnlyInLibraryCode)
{
    const std::string content = fixture("src/bad_fault.cpp");
    const auto in_src = lint_content("src/bad_fault.cpp", content);
    EXPECT_EQ(findings(in_src),
              (Want{{"fault-gate", 10}, {"fault-gate", 11}}));
    // Tests and the fault implementation exercise the API directly.
    EXPECT_TRUE(lint_content("tests/bad_fault.cpp", content).empty());
    EXPECT_TRUE(
        lint_content("src/common/fault.cpp", content).empty());
}

TEST(ImcLintRules, FaultSiteMustBeALiteralPerFile)
{
    // Per-file phase 1 checks only literal-ness; whether the literal
    // is *registered* is the phase-2 cross-check (below).
    const std::string content = fixture("src/bad_fault_site.cpp");
    const auto in_src =
        lint_content("src/bad_fault_site.cpp", content);
    EXPECT_EQ(findings(in_src), (Want{{"fault-site", 12}}));
    // The rule follows the probe macro everywhere it can appear —
    // tests included — but never inside the defining header (which
    // spells the forwarded macro arguments as identifiers).
    EXPECT_EQ(
        lint_content("tests/bad_fault_site.cpp", content).size(), 1u);
    for (const Diagnostic& d :
         lint_content("src/common/fault.hpp", content))
        EXPECT_NE(d.rule, "fault-site");
}

// --- determinism-taint ------------------------------------------------

TEST(ImcLintTaint, FlowsThroughLocalsIntoStreamAndDigest)
{
    const auto diags = lint_content("src/bad_taint.cpp",
                                    fixture("src/bad_taint.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"determinism-taint", 15},
                                     {"determinism-taint", 22}}));
}

TEST(ImcLintTaint, KeyedLookupsAndSortedEmissionStayClean)
{
    // find/emplace and operator[] never iterate; sorting before
    // emission sanitizes — both idioms the real tree relies on. The
    // fixture also reuses the loop name `k` across a tainted and a
    // clean range-for: the clean binding must kill the stale taint.
    const auto diags = lint_content("src/clean_taint.cpp",
                                    fixture("src/clean_taint.cpp"));
    for (const Diagnostic& d : diags)
        if (d.rule == "determinism-taint")
            FAIL() << d.message;
}

TEST(ImcLintTaint, SuppressionSilencesTheTaintPass)
{
    const auto diags =
        lint_content("src/taint_suppressed.cpp",
                     fixture("src/taint_suppressed.cpp"));
    EXPECT_TRUE(diags.empty())
        << (diags.empty() ? "" : diags[0].message);
}

TEST(ImcLintTaint, SiblingHeaderMembersAreTracked)
{
    const std::string cpp = fixture("src/member_iter.cpp");
    const std::string hpp = fixture("src/member_iter.hpp");
    // Without the header the member's type is unknown — silent.
    EXPECT_TRUE(lint_content("src/member_iter.cpp", cpp).empty());
    const auto diags =
        lint_content("src/member_iter.cpp", cpp, hpp, Options{});
    EXPECT_EQ(findings(diags), (Want{{"determinism-taint", 14}}));
}

// --- Suppressions -----------------------------------------------------

TEST(ImcLintSuppression, JustifiedSilencesUnjustifiedDoesNot)
{
    const auto diags = lint_content("src/suppressed.cpp",
                                    fixture("src/suppressed.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"banned-printf", 14},
                                     {"lint-suppression", 14},
                                     {"lint-suppression", 16}}));
}

TEST(ImcLintClean, ConformingHeaderIsSilent)
{
    const auto diags =
        lint_content("src/clean.hpp", fixture("src/clean.hpp"));
    EXPECT_TRUE(diags.empty()) << diags.size() << " diagnostics, "
                               << "first: "
                               << (diags.empty() ? ""
                                                 : diags[0].message);
}

TEST(ImcLintOptions, DisabledRulesAreFiltered)
{
    Options opts;
    opts.disabled_rules.insert("banned-printf");
    const auto diags = lint_content(
        "src/bad_printf.cpp", fixture("src/bad_printf.cpp"), opts);
    EXPECT_TRUE(diags.empty());
}

// --- Phase 2: project passes ------------------------------------------

TEST(ImcLintProject, TreeBadPinsEveryCrossFileRule)
{
    ProjectOptions opts; // dead checks on, policy auto-loaded
    const ProjectResult r =
        analyze_tree(fixture_dir("tree_bad"), {"src"}, opts);
    EXPECT_EQ(
        project_findings(r),
        (WantP{
            {"layer-violation", "src/common/base.hpp", 4},
            {"fault-site-dead", "src/common/fault.hpp", 5},
            {"obs-name-dead", "src/common/obs.hpp", 5},
            {"include-cycle", "src/sim/loop.hpp", 4},
            {"fault-site", "src/sim/use.cpp", 6},
            {"obs-name", "src/sim/use.cpp", 8},
        }));
    // The offending layer edge is named in full.
    EXPECT_NE(r.diags[0].message.find(
                  "src/common/base.hpp -> src/sim/loop.hpp"),
              std::string::npos);
}

TEST(ImcLintProject, TreeSuppressedIsFullyClean)
{
    ProjectOptions opts;
    const ProjectResult r =
        analyze_tree(fixture_dir("tree_suppressed"), {"src"}, opts);
    EXPECT_TRUE(r.diags.empty())
        << (r.diags.empty() ? "" : r.diags[0].message);
    EXPECT_EQ(r.stats.suppressed_without_reason, 0u);
    EXPECT_EQ(r.stats.suppressions, 6u);
}

TEST(ImcLintProject, DeadChecksAreScopedToWholeTreeRuns)
{
    ProjectOptions opts;
    opts.dead_checks = false; // the CLI's explicit-PATH behaviour
    const ProjectResult r =
        analyze_tree(fixture_dir("tree_bad"), {"src"}, opts);
    for (const Diagnostic& d : r.diags) {
        EXPECT_NE(d.rule, "fault-site-dead");
        EXPECT_NE(d.rule, "obs-name-dead");
    }
    EXPECT_EQ(r.diags.size(), 4u);
}

TEST(ImcLintProject, ToolsReachSrcOnlyThroughPublicHeaders)
{
    const std::string policy = "layer common src/common/\n"
                               "public src/common/cli.hpp\n";
    ProjectOptions opts;
    opts.dead_checks = false;
    opts.layers_text = policy;
    const auto hdr = [](const std::string& guard) {
        return "#ifndef " + guard + "\n#define " + guard +
               "\n#endif // " + guard + "\n";
    };
    const ProjectResult r = analyze_files(
        {{"src/common/cli.hpp", hdr("IMC_COMMON_CLI_HPP")},
         {"src/common/rng.hpp", hdr("IMC_COMMON_RNG_HPP")},
         {"tools/probe/main.cpp", "#include \"common/cli.hpp\"\n"
                                  "#include \"common/rng.hpp\"\n"}},
        opts);
    EXPECT_EQ(project_findings(r),
              (WantP{{"layer-violation", "tools/probe/main.cpp", 2}}));
    EXPECT_NE(r.diags[0].message.find("src/common/rng.hpp"),
              std::string::npos);
}

TEST(ImcLintProject, LayerPolicyParseErrorsAreDiagnostics)
{
    const auto policy = parse_layer_policy("layer a src/a/\n"
                                           "allow a b\n"
                                           "frobnicate x\n",
                                           "layers.txt");
    ASSERT_EQ(policy.errors.size(), 2u);
    EXPECT_EQ(policy.errors[0].rule, "layer-policy");
    EXPECT_EQ(policy.errors[0].line, 2);
    EXPECT_EQ(policy.errors[1].line, 3);
}

TEST(ImcLintProject, ObsPatternsNormalizeDynamicFragments)
{
    const std::string registry =
        "#ifndef IMC_COMMON_OBS_HPP\n"
        "#define IMC_COMMON_OBS_HPP\n"
        "inline constexpr const char* kObsNames[] = {\n"
        "    \"fault.injected.*\",\n"
        "    \"*.runs\",\n"
        "};\n"
        "#endif // IMC_COMMON_OBS_HPP\n";
    const std::string use =
        "#include <string>\n"
        "void f(const std::string& site, const std::string& pfx,\n"
        "       const std::string& dyn)\n"
        "{\n"
        "    IMC_OBS_COUNT(\"fault.injected.\" + site);\n"
        "    IMC_OBS_COUNT(pfx + \".runs\");\n"
        "    IMC_OBS_COUNT(pfx + dyn);\n"
        "}\n";
    ProjectOptions opts;
    opts.dead_checks = false;
    const ProjectResult r = analyze_files(
        {{"src/common/obs.hpp", registry}, {"src/x.cpp", use}},
        opts);
    // Lines 5 and 6 normalize to registered patterns; the fully
    // dynamic name on line 7 normalizes to "*" and is rejected.
    EXPECT_EQ(project_findings(r),
              (WantP{{"obs-name", "src/x.cpp", 7}}));
}

// --- The incremental cache --------------------------------------------

TEST(ImcLintCache, WarmRunIsByteIdenticalAndIncremental)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "imc_lint_cache_test";
    fs::remove_all(root);
    fs::create_directories(root / "src");
    const auto write = [&](const char* rel, const std::string& s) {
        std::ofstream out(root / rel, std::ios::trunc);
        out << s;
    };
    write("src/a.hpp", "#ifndef IMC_A_HPP\n#define IMC_A_HPP\n"
                       "#endif // IMC_A_HPP\n");
    write("src/b.cpp",
          "#include <cstdio>\nvoid f() { std::printf(\"x\"); }\n");
    ProjectOptions opts;
    opts.dead_checks = false;
    const std::string cache = (root / "cache.txt").string();

    const ProjectResult cold =
        analyze_tree(root.string(), {"src"}, opts);
    const ProjectResult warm1 =
        analyze_tree(root.string(), {"src"}, opts, cache);
    const ProjectResult warm2 =
        analyze_tree(root.string(), {"src"}, opts, cache);
    EXPECT_EQ(cold.diags, warm2.diags);
    EXPECT_EQ(warm1.stats.files_reused, 0u);
    EXPECT_EQ(warm2.stats.files_reused, 2u);

    // Touch one file: only it re-lexes, findings match a cold run.
    write("src/b.cpp",
          "#include <cstdio>\nvoid f() { std::printf(\"x\"); }\n"
          "void g() { std::puts(\"y\"); }\n");
    const ProjectResult warm3 =
        analyze_tree(root.string(), {"src"}, opts, cache);
    const ProjectResult cold2 =
        analyze_tree(root.string(), {"src"}, opts);
    EXPECT_EQ(warm3.diags, cold2.diags);
    EXPECT_EQ(warm3.stats.files_reused, 1u);
    EXPECT_EQ(warm3.diags.size(), 2u);
    fs::remove_all(root);
}

// --- --fix ------------------------------------------------------------

TEST(ImcLintFix, IncludeOrderFixIsIdempotent)
{
    const std::string bad = fixture("fix/bad_order.cpp");
    const auto once = fix_content("src/bad_order.cpp", bad);
    ASSERT_TRUE(once.has_value());
    for (const Diagnostic& d :
         lint_content("src/bad_order.cpp", *once))
        EXPECT_NE(d.rule, "include-order") << d.message;
    // Groups are stable-sorted: both <system> includes precede the
    // project include, original relative order preserved.
    EXPECT_LT(once->find("<vector>"), once->find("<string>"));
    EXPECT_LT(once->find("<string>"),
              once->find("\"common/stats.hpp\""));
    EXPECT_FALSE(fix_content("src/bad_order.cpp", *once).has_value());
}

TEST(ImcLintFix, HeaderGuardFixIsIdempotent)
{
    const std::string bad = fixture("fix/wrong_guard.hpp");
    const auto once = fix_content("src/wrong_guard.hpp", bad);
    ASSERT_TRUE(once.has_value());
    for (const Diagnostic& d :
         lint_content("src/wrong_guard.hpp", *once))
        EXPECT_NE(d.rule, "header-guard") << d.message;
    EXPECT_NE(once->find("IMC_WRONG_GUARD_HPP"), std::string::npos);
    EXPECT_FALSE(
        fix_content("src/wrong_guard.hpp", *once).has_value());
}

TEST(ImcLintFix, ConformingContentIsLeftAlone)
{
    EXPECT_FALSE(fix_content("src/clean.hpp", fixture("src/clean.hpp"))
                     .has_value());
}

// --- Output formats ---------------------------------------------------

TEST(ImcLintOutput, SarifCarriesRulesAndResults)
{
    ProjectOptions opts;
    opts.dead_checks = false;
    const ProjectResult r = analyze_files(
        {{"src/p.cpp",
          "#include <cstdio>\nvoid f() { std::printf(\"x\"); }\n"}},
        opts);
    std::ostringstream os;
    imc::lint::write_sarif(os, r);
    const std::string sarif = os.str();
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"banned-printf\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"uri\": \"src/p.cpp\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 2"), std::string::npos);
}

TEST(ImcLintOutput, StatsContractIsStable)
{
    ProjectOptions opts;
    const ProjectResult r =
        analyze_tree(fixture_dir("tree_suppressed"), {"src"}, opts);
    std::ostringstream os;
    imc::lint::write_stats(os, r.stats);
    EXPECT_EQ(os.str(), "files 5\n"
                        "files_reused 0\n"
                        "include_edges 2\n"
                        "diagnostics 0\n"
                        "suppressions 6\n"
                        "suppressed_without_reason 0\n");
}

TEST(ImcLintOutput, DotListsEveryResolvedEdge)
{
    ProjectOptions opts;
    const ProjectResult r =
        analyze_tree(fixture_dir("tree_bad"), {"src"}, opts);
    std::ostringstream os;
    imc::lint::write_include_dot(os, r);
    const std::string dot = os.str();
    EXPECT_NE(dot.find("\"src/common/base.hpp\" -> "
                       "\"src/sim/loop.hpp\""),
              std::string::npos);
    EXPECT_NE(dot.find("\"src/sim/loop.hpp\" -> "
                       "\"src/common/base.hpp\""),
              std::string::npos);
}

// --- Meta -------------------------------------------------------------

TEST(ImcLintMeta, EveryEmittedRuleIsDocumented)
{
    const auto& desc = imc::lint::rule_descriptions();
    for (const char* f :
         {"src/bad_determinism.cpp", "src/bad_taint.cpp",
          "src/bad_parse.cpp", "src/bad_printf.cpp",
          "src/bad_new_delete.cpp", "src/bad_config_error.cpp",
          "src/bad_guard.hpp", "src/bad_include_order.cpp",
          "src/bad_obs.cpp", "src/bad_fault.cpp",
          "src/bad_fault_site.cpp", "src/suppressed.cpp"}) {
        for (const Diagnostic& d : lint_content(f, fixture(f)))
            EXPECT_EQ(desc.count(d.rule), 1u)
                << "undocumented rule " << d.rule;
    }
    // The phase-2 rules are documented too.
    for (const char* rule :
         {"include-cycle", "layer-violation", "layer-policy",
          "fault-site-dead", "obs-name", "obs-name-dead",
          "determinism-taint"})
        EXPECT_EQ(desc.count(rule), 1u) << rule;
}

} // namespace
