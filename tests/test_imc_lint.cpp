/**
 * @file
 * Tests of the imc-lint static-analysis pass: every rule fires on
 * its fixture at the exact line, the clean fixtures stay silent,
 * category scoping works (printf allowed in bench, obs-gate only in
 * src), suppressions silence only when justified, and cross-file
 * unordered-member detection sees the sibling header.
 *
 * Fixtures live in tests/lint_fixtures/ (excluded from the
 * tree-wide ImcLint.Tree run precisely because they violate on
 * purpose) and are read from IMC_LINT_FIXTURE_DIR.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

using imc::lint::Diagnostic;
using imc::lint::lint_content;
using imc::lint::Options;

std::string
fixture(const std::string& name)
{
    const std::string path =
        std::string(IMC_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** (rule, line) pairs, in report order. */
std::vector<std::pair<std::string, int>>
findings(const std::vector<Diagnostic>& diags)
{
    std::vector<std::pair<std::string, int>> out;
    out.reserve(diags.size());
    for (const Diagnostic& d : diags)
        out.emplace_back(d.rule, d.line);
    return out;
}

using Want = std::vector<std::pair<std::string, int>>;

TEST(ImcLintRules, DeterminismRandFiresPerSite)
{
    const auto diags = lint_content("src/bad_determinism.cpp",
                                    fixture("src/bad_determinism.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"determinism-rand", 9},
                                     {"determinism-rand", 10},
                                     {"determinism-rand", 12},
                                     {"determinism-rand", 14}}));
}

TEST(ImcLintRules, UnorderedIterationFlagsRangeForAndBegin)
{
    const auto diags = lint_content("src/bad_unordered.cpp",
                                    fixture("src/bad_unordered.cpp"));
    EXPECT_EQ(findings(diags),
              (Want{{"determinism-unordered-iter", 10},
                    {"determinism-unordered-iter", 16}}));
}

TEST(ImcLintRules, NumberParseFlagsAtoiAndRawStrtod)
{
    const auto diags = lint_content("src/bad_parse.cpp",
                                    fixture("src/bad_parse.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"banned-number-parse", 6},
                                     {"banned-number-parse", 8}}));
}

TEST(ImcLintRules, PrintfBannedInLibraryOnly)
{
    const std::string content = fixture("src/bad_printf.cpp");
    const auto in_src = lint_content("src/bad_printf.cpp", content);
    EXPECT_EQ(findings(in_src), (Want{{"banned-printf", 5}}));
    // The same code in a bench harness is allowed to print.
    const auto in_bench =
        lint_content("bench/bad_printf.cpp", content);
    EXPECT_TRUE(in_bench.empty());
}

TEST(ImcLintRules, NewDeleteFlagsNakedButNotDeletedFunctions)
{
    const auto diags = lint_content("src/bad_new_delete.cpp",
                                    fixture("src/bad_new_delete.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"banned-new-delete", 5},
                                     {"banned-new-delete", 6}}));
}

TEST(ImcLintRules, ConfigErrorNeedsContext)
{
    const auto diags =
        lint_content("src/bad_config_error.cpp",
                     fixture("src/bad_config_error.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"config-error-context", 8}}));
}

TEST(ImcLintRules, HeaderGuardMustMatchPath)
{
    const auto diags = lint_content("src/bad_guard.hpp",
                                    fixture("src/bad_guard.hpp"));
    ASSERT_EQ(findings(diags), (Want{{"header-guard", 1}}));
    EXPECT_NE(diags[0].message.find("IMC_BAD_GUARD_HPP"),
              std::string::npos);
}

TEST(ImcLintRules, IncludeOrderRejectsInterleavedGroups)
{
    const auto diags =
        lint_content("src/bad_include_order.cpp",
                     fixture("src/bad_include_order.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"include-order", 6}}));
}

TEST(ImcLintRules, ObsGateOnlyInLibraryCode)
{
    const std::string content = fixture("src/bad_obs.cpp");
    const auto in_src = lint_content("src/bad_obs.cpp", content);
    EXPECT_EQ(findings(in_src),
              (Want{{"obs-gate", 9}, {"obs-gate", 10}}));
    // Tests may exercise the obs API directly.
    const auto in_tests = lint_content("tests/bad_obs.cpp", content);
    EXPECT_TRUE(in_tests.empty());
}

TEST(ImcLintRules, FaultGateOnlyInLibraryCode)
{
    const std::string content = fixture("src/bad_fault.cpp");
    const auto in_src = lint_content("src/bad_fault.cpp", content);
    EXPECT_EQ(findings(in_src),
              (Want{{"fault-gate", 10}, {"fault-gate", 11}}));
    // Tests and the fault implementation exercise the API directly.
    EXPECT_TRUE(lint_content("tests/bad_fault.cpp", content).empty());
    EXPECT_TRUE(
        lint_content("src/common/fault.cpp", content).empty());
}

TEST(ImcLintRules, FaultSiteMustBeARegisteredLiteral)
{
    const std::string content = fixture("src/bad_fault_site.cpp");
    const auto in_src = lint_content("src/bad_fault_site.cpp", content);
    EXPECT_EQ(findings(in_src),
              (Want{{"fault-site", 10}, {"fault-site", 11}}));
    // The rule follows the probe macro everywhere it can appear —
    // tests included — but never inside the defining header (which
    // spells the forwarded macro arguments as identifiers).
    EXPECT_EQ(
        lint_content("tests/bad_fault_site.cpp", content).size(), 2u);
    for (const Diagnostic& d :
         lint_content("src/common/fault.hpp", content))
        EXPECT_NE(d.rule, "fault-site");
}

TEST(ImcLintSuppression, JustifiedSilencesUnjustifiedDoesNot)
{
    const auto diags = lint_content("src/suppressed.cpp",
                                    fixture("src/suppressed.cpp"));
    EXPECT_EQ(findings(diags), (Want{{"banned-printf", 14},
                                     {"lint-suppression", 14},
                                     {"lint-suppression", 16}}));
}

TEST(ImcLintClean, ConformingHeaderIsSilent)
{
    const auto diags =
        lint_content("src/clean.hpp", fixture("src/clean.hpp"));
    EXPECT_TRUE(diags.empty()) << diags.size() << " diagnostics, "
                               << "first: "
                               << (diags.empty() ? ""
                                                 : diags[0].message);
}

TEST(ImcLintCrossFile, SiblingHeaderMembersAreTracked)
{
    const std::string cpp = fixture("src/member_iter.cpp");
    const std::string hpp = fixture("src/member_iter.hpp");
    // Without the header the member's type is unknown — silent.
    EXPECT_TRUE(lint_content("src/member_iter.cpp", cpp).empty());
    const auto diags =
        lint_content("src/member_iter.cpp", cpp, hpp, Options{});
    EXPECT_EQ(findings(diags),
              (Want{{"determinism-unordered-iter", 10}}));
}

TEST(ImcLintOptions, DisabledRulesAreFiltered)
{
    Options opts;
    opts.disabled_rules.insert("banned-printf");
    const auto diags = lint_content(
        "src/bad_printf.cpp", fixture("src/bad_printf.cpp"), opts);
    EXPECT_TRUE(diags.empty());
}

TEST(ImcLintMeta, EveryEmittedRuleIsDocumented)
{
    const auto& desc = imc::lint::rule_descriptions();
    for (const char* f :
         {"src/bad_determinism.cpp", "src/bad_unordered.cpp",
          "src/bad_parse.cpp", "src/bad_printf.cpp",
          "src/bad_new_delete.cpp", "src/bad_config_error.cpp",
          "src/bad_guard.hpp", "src/bad_include_order.cpp",
          "src/bad_obs.cpp", "src/bad_fault.cpp",
          "src/bad_fault_site.cpp", "src/suppressed.cpp"}) {
        for (const Diagnostic& d : lint_content(f, fixture(f)))
            EXPECT_EQ(desc.count(d.rule), 1u)
                << "undocumented rule " << d.rule;
    }
}

} // namespace
