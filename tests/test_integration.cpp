/**
 * @file
 * End-to-end integration tests: the full pipeline from profiling to
 * prediction to placement, exercised exactly the way the benchmark
 * harnesses use it (with reduced sizes for test speed).
 */

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "placement/annealer.hpp"
#include "placement/evaluator.hpp"
#include "placement/mixes.hpp"
#include "workload/catalog.hpp"
#include "workload/runner.hpp"

using namespace imc;
using namespace imc::core;
using namespace imc::placement;
using namespace imc::workload;

namespace {

RunConfig
fast_cfg()
{
    RunConfig cfg;
    cfg.reps = 1;
    cfg.seed = 2024;
    return cfg;
}

ModelRegistry&
shared_registry()
{
    static ModelRegistry registry(fast_cfg(), [] {
        ModelBuildOptions opts;
        opts.policy_samples = 10;
        return opts;
    }());
    return registry;
}

} // namespace

TEST(Integration, PropagationClassesEmergeFromStructure)
{
    // The headline characterization (Fig. 2/3): with one interfered
    // node at top pressure, a barrier-coupled app loses most of its
    // full-interference slowdown, a task-pool app only a fraction,
    // and an insensitive app nothing.
    const auto cfg = fast_cfg();
    const auto nodes = all_nodes(cfg.cluster);
    auto frac_at_one_node = [&](const char* abbrev) {
        const auto& app = find_app(abbrev);
        std::vector<double> one(8, 0.0);
        one[0] = 8.0;
        const std::vector<double> all(8, 8.0);
        const double t1 = run_with_bubbles_norm(app, nodes, one, cfg);
        const double t8 = run_with_bubbles_norm(app, nodes, all, cfg);
        return (t1 - 1.0) / (t8 - 1.0);
    };
    const double milc = frac_at_one_node("M.milc");
    const double gems = frac_at_one_node("M.Gems");
    EXPECT_GT(milc, 0.35);        // high propagation: far above 1/8
    EXPECT_LT(gems, 0.30);        // proportional: near 1/8
    EXPECT_GT(milc, gems + 0.10); // and clearly separated
}

TEST(Integration, ModelPredictsCorunWithinTolerance)
{
    // Build a model from profiling runs only, then predict a co-run
    // it has never seen and compare against the simulator.
    auto& registry = shared_registry();
    const auto cfg = fast_cfg();
    const auto nodes = all_nodes(cfg.cluster);

    const auto& victim = find_app("M.milc");
    const auto& aggressor = find_app("C.sopl");
    const auto& victim_model = registry.model(victim, 8);
    const auto& aggressor_model = registry.model(aggressor, 8);

    const std::vector<double> pressures(
        8, aggressor_model.model.bubble_score());
    const double predicted = victim_model.model.predict(pressures);

    RunConfig corun_cfg = cfg;
    corun_cfg.salt = hash_string("integration-corun");
    const double solo = run_solo_time(victim, nodes, corun_cfg);
    const double actual =
        run_corun_time(victim, nodes,
                       {Deployment{aggressor, nodes}}, corun_cfg) /
        solo;
    EXPECT_GT(actual, 1.02); // the co-run genuinely interferes
    EXPECT_NEAR(predicted, actual, 0.18 * actual)
        << "predicted " << predicted << " vs actual " << actual;
}

TEST(Integration, ProfilingAlgorithmsAgreeOnRealApp)
{
    // Table 3's ordering on a real profiled application: exhaustive
    // is ground truth; binary-optimized must be cheaper than
    // binary-brute and both must beat random-30% in accuracy.
    const auto cfg = fast_cfg();
    const auto& app = find_app("M.lesl");
    const auto nodes = all_nodes(cfg.cluster);

    ProfileOptions opts;
    CountingMeasure truth_m(
        make_cluster_measure(app, nodes, cfg, opts.grid));
    const auto truth = profile_exhaustive(truth_m, opts);

    CountingMeasure brute_m(
        make_cluster_measure(app, nodes, cfg, opts.grid));
    const auto brute = profile_binary_brute(brute_m, opts);
    CountingMeasure opt_m(
        make_cluster_measure(app, nodes, cfg, opts.grid));
    const auto optimized = profile_binary_optimized(opt_m, opts);
    CountingMeasure rnd_m(
        make_cluster_measure(app, nodes, cfg, opts.grid));
    const auto random30 =
        profile_random(rnd_m, opts, 0.3, Rng(5));

    EXPECT_LT(optimized.measured, brute.measured);
    const double err_brute =
        matrix_error_pct(brute.matrix, truth.matrix);
    const double err_opt =
        matrix_error_pct(optimized.matrix, truth.matrix);
    const double err_rnd =
        matrix_error_pct(random30.matrix, truth.matrix);
    EXPECT_LT(err_brute, 5.0);
    EXPECT_LT(err_opt, 10.0);
    EXPECT_LT(err_brute, err_rnd + 1e-9);
}

TEST(Integration, PlacementSearchBeatsWorstOnRealModels)
{
    auto& registry = shared_registry();
    const Mix mix{"test", {"N.mg", "C.libq", "H.KM", "M.Gems"}, -1};
    const auto instances =
        instantiate(mix, registry.config().cluster);
    ModelEvaluator eval(registry, instances);

    Rng rng(6);
    auto initial = Placement::random(
        instances, registry.config().cluster, rng);
    AnnealOptions opts;
    opts.iterations = 2500;
    opts.seed = 13;
    const auto best = anneal(initial, eval, Goal::MinimizeTotalTime,
                             std::nullopt, opts);
    const auto worst = anneal(initial, eval, Goal::MaximizeTotalTime,
                              std::nullopt, opts);
    ASSERT_LT(best.total_time, worst.total_time);

    // And the *measured* cluster agrees on the ordering.
    RunConfig cfg = registry.config();
    cfg.salt = hash_string("integration-placement");
    const auto best_actual = measure_actual(best.placement, cfg);
    const auto worst_actual = measure_actual(worst.placement, cfg);
    double best_total = 0.0;
    double worst_total = 0.0;
    for (std::size_t i = 0; i < best_actual.size(); ++i) {
        best_total += best_actual[i];
        worst_total += worst_actual[i];
    }
    EXPECT_LT(best_total, worst_total);
}

TEST(Integration, QosPlacementMeetsConstraintInSimulator)
{
    auto& registry = shared_registry();
    const Mix mix = qos_mixes().front();
    const auto instances =
        instantiate(mix, registry.config().cluster);
    ModelEvaluator eval(registry, instances);

    Rng rng(14);
    auto initial = Placement::random(
        instances, registry.config().cluster, rng);
    AnnealOptions opts;
    opts.iterations = 2500;
    opts.seed = 21;
    QosConstraint qos{mix.qos_index, 1.25};
    const auto result = anneal(initial, eval,
                               Goal::MinimizeTotalTime, qos, opts);
    ASSERT_TRUE(result.qos_met) << "model could not satisfy QoS";

    RunConfig cfg = registry.config();
    cfg.salt = hash_string("integration-qos");
    const auto actual = measure_actual(result.placement, cfg);
    // Allow the simulator a modest margin over the model's promise.
    EXPECT_LT(actual[static_cast<std::size_t>(mix.qos_index)], 1.40);
}
