/**
 * @file
 * Unit tests of the interpolation helpers.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/interp.hpp"

using namespace imc;

TEST(LinearInterpolator, ExactAtSamples)
{
    LinearInterpolator f({0.0, 1.0, 2.0}, {10.0, 20.0, 40.0});
    EXPECT_DOUBLE_EQ(f(0.0), 10.0);
    EXPECT_DOUBLE_EQ(f(1.0), 20.0);
    EXPECT_DOUBLE_EQ(f(2.0), 40.0);
}

TEST(LinearInterpolator, InterpolatesBetweenSamples)
{
    LinearInterpolator f({0.0, 1.0, 2.0}, {10.0, 20.0, 40.0});
    EXPECT_DOUBLE_EQ(f(0.5), 15.0);
    EXPECT_DOUBLE_EQ(f(1.5), 30.0);
}

TEST(LinearInterpolator, ClampsOutsideRange)
{
    LinearInterpolator f({1.0, 2.0}, {5.0, 7.0});
    EXPECT_DOUBLE_EQ(f(0.0), 5.0);
    EXPECT_DOUBLE_EQ(f(3.0), 7.0);
}

TEST(LinearInterpolator, SingleSampleIsConstant)
{
    LinearInterpolator f({1.0}, {9.0});
    EXPECT_DOUBLE_EQ(f(-5.0), 9.0);
    EXPECT_DOUBLE_EQ(f(1.0), 9.0);
    EXPECT_DOUBLE_EQ(f(5.0), 9.0);
}

TEST(LinearInterpolator, RejectsBadInput)
{
    EXPECT_THROW(LinearInterpolator({}, {}), ConfigError);
    EXPECT_THROW(LinearInterpolator({1.0, 1.0}, {1.0, 2.0}),
                 ConfigError);
    EXPECT_THROW(LinearInterpolator({2.0, 1.0}, {1.0, 2.0}),
                 ConfigError);
    EXPECT_THROW(LinearInterpolator({1.0}, {1.0, 2.0}), ConfigError);
}

TEST(Lerp, Basics)
{
    EXPECT_DOUBLE_EQ(lerp(0.0, 0.0, 1.0, 10.0, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(lerp(0.0, 0.0, 1.0, 10.0, 2.0), 20.0); // extrapolates
}

TEST(InterpolateHoles, FillsMiddle)
{
    std::vector<double> row{1.0, -1.0, -1.0, 4.0};
    interpolate_holes(row, -1.0);
    EXPECT_DOUBLE_EQ(row[1], 2.0);
    EXPECT_DOUBLE_EQ(row[2], 3.0);
}

TEST(InterpolateHoles, MultipleSegments)
{
    std::vector<double> row{0.0, -1.0, 2.0, -1.0, -1.0, 8.0};
    interpolate_holes(row, -1.0);
    EXPECT_DOUBLE_EQ(row[1], 1.0);
    EXPECT_DOUBLE_EQ(row[3], 4.0);
    EXPECT_DOUBLE_EQ(row[4], 6.0);
}

TEST(InterpolateHoles, NoHolesIsNoop)
{
    std::vector<double> row{1.0, 2.0, 3.0};
    interpolate_holes(row, -1.0);
    EXPECT_EQ(row, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(InterpolateHoles, RejectsUnmeasuredEndpoints)
{
    std::vector<double> bad_front{-1.0, 2.0};
    EXPECT_THROW(interpolate_holes(bad_front, -1.0), ConfigError);
    std::vector<double> bad_back{1.0, -1.0};
    EXPECT_THROW(interpolate_holes(bad_back, -1.0), ConfigError);
}
