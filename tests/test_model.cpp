/**
 * @file
 * Unit tests of the combined interference model and the naive
 * proportional baseline.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/model.hpp"

using namespace imc;
using namespace imc::core;

namespace {

SensitivityMatrix
matrix4()
{
    // 3 pressure levels, 4 hosts; high-propagation shape.
    return SensitivityMatrix({
        {1.0, 1.08, 1.09, 1.10, 1.11},
        {1.0, 1.30, 1.33, 1.36, 1.38},
        {1.0, 1.70, 1.76, 1.82, 1.90},
    });
}

} // namespace

TEST(InterferenceModel, AccessorsRoundTrip)
{
    const InterferenceModel m("M.test", matrix4(),
                              HeteroPolicy::NPlus1Max, 3.2);
    EXPECT_EQ(m.app(), "M.test");
    EXPECT_EQ(m.policy(), HeteroPolicy::NPlus1Max);
    EXPECT_DOUBLE_EQ(m.bubble_score(), 3.2);
    EXPECT_EQ(m.matrix().hosts(), 4);
}

TEST(InterferenceModel, CleanPlacementPredictsUnity)
{
    const InterferenceModel m("x", matrix4(), HeteroPolicy::NMax, 1.0);
    EXPECT_DOUBLE_EQ(m.predict({0, 0, 0, 0}), 1.0);
}

TEST(InterferenceModel, PredictionUsesPolicyConversion)
{
    // [3,1,0,0] under N MAX -> 1 node at pressure 3 -> T[3][1].
    const InterferenceModel nmax("x", matrix4(), HeteroPolicy::NMax,
                                 1.0);
    EXPECT_DOUBLE_EQ(nmax.predict({3, 1, 0, 0}), 1.70);

    // Same list under N+1 MAX -> 2 nodes at pressure 3 -> T[3][2].
    const InterferenceModel nplus("x", matrix4(),
                                  HeteroPolicy::NPlus1Max, 1.0);
    EXPECT_DOUBLE_EQ(nplus.predict({3, 1, 0, 0}), 1.76);

    // ALL MAX -> 4 nodes at pressure 3 -> T[3][4].
    const InterferenceModel allmax("x", matrix4(),
                                   HeteroPolicy::AllMax, 1.0);
    EXPECT_DOUBLE_EQ(allmax.predict({3, 1, 0, 0}), 1.90);

    // INTERPOLATE -> 4 nodes at pressure 1 -> T[1][4].
    const InterferenceModel interp("x", matrix4(),
                                   HeteroPolicy::Interpolate, 1.0);
    EXPECT_DOUBLE_EQ(interp.predict({3, 1, 0, 0}), 1.11);
}

TEST(InterferenceModel, FractionalScoresInterpolate)
{
    const InterferenceModel m("x", matrix4(), HeteroPolicy::NMax, 1.0);
    const double mid = m.predict({2.5, 0, 0, 0});
    EXPECT_GT(mid, m.predict({2.0, 0, 0, 0}));
    EXPECT_LT(mid, m.predict({3.0, 0, 0, 0}));
}

TEST(InterferenceModel, MonotoneInAddedInterference)
{
    const InterferenceModel m("x", matrix4(),
                              HeteroPolicy::NPlus1Max, 1.0);
    EXPECT_LE(m.predict({2, 0, 0, 0}), m.predict({2, 2, 0, 0}));
    EXPECT_LE(m.predict({2, 2, 0, 0}), m.predict({3, 2, 0, 0}));
}

TEST(InterferenceModel, NegativeScoreRejected)
{
    EXPECT_THROW(
        InterferenceModel("x", matrix4(), HeteroPolicy::NMax, -1.0),
        ConfigError);
}

TEST(NaiveModel, ProportionalInInterferedNodeCount)
{
    const auto m = matrix4();
    // One of four nodes at pressure 3: 1 + (1/4)(1.90-1) = 1.225...
    // but N+1 max conversion maps [3,0,0,0] to 1 node (no lower
    // interfering nodes to merge).
    const double one = predict_naive(m, {3, 0, 0, 0});
    EXPECT_DOUBLE_EQ(one, 1.0 + 0.25 * 0.90);
    const double two = predict_naive(m, {3, 3, 0, 0});
    EXPECT_DOUBLE_EQ(two, 1.0 + 0.50 * 0.90);
    const double all = predict_naive(m, {3, 3, 3, 3});
    EXPECT_DOUBLE_EQ(all, 1.90); // converges to the measured point
}

TEST(NaiveModel, CleanIsUnity)
{
    EXPECT_DOUBLE_EQ(predict_naive(matrix4(), {0, 0, 0, 0}), 1.0);
}

TEST(NaiveModel, UnderestimatesHighPropagationAtOneNode)
{
    // The motivating observation (Fig. 2): for barrier-coupled apps
    // the real T[p][1] is close to T[p][m], but the naive model only
    // charges 1/m of it.
    const auto m = matrix4();
    const InterferenceModel full("x", m, HeteroPolicy::NPlus1Max, 1.0);
    EXPECT_GT(full.predict({3, 0, 0, 0}),
              predict_naive(m, {3, 0, 0, 0}) + 0.3);
}
