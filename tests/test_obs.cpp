/**
 * @file
 * Tests of the imc::obs observability layer: counter and histogram
 * correctness under concurrent writers (the TSan CI job runs these),
 * span nesting, Chrome-trace JSON well-formedness, export formats,
 * and the contract that enabling collection never changes a measured
 * value.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/obs.hpp"
#include "workload/catalog.hpp"
#include "workload/run_service.hpp"

using namespace imc;

namespace {

/**
 * Minimal recursive-descent JSON validator — enough to prove the
 * trace/metrics exports are well-formed without a JSON dependency.
 * Returns true when @p text is exactly one valid JSON value.
 */
class JsonValidator {
  public:
    explicit JsonValidator(const std::string& text) : text_(text) {}

    bool valid()
    {
        skip_ws();
        if (!value())
            return false;
        skip_ws();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string())
                return false;
            skip_ws();
            if (peek() != ':')
                return false;
            ++pos_;
            skip_ws();
            if (!value())
                return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!value())
                return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c < 0x20)
                return false; // raw control char inside a string
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char* word)
    {
        const std::string w(word);
        if (text_.compare(pos_, w.size(), w) != 0)
            return false;
        pos_ += w.size();
        return true;
    }

    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

Cli
make_cli(std::initializer_list<const char*> args)
{
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return Cli(static_cast<int>(argv.size()), argv.data());
}

/** Every test starts and ends with a clean, disabled registry. */
class ObsTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        obs::reset();
        obs::set_enabled(true);
    }
    void TearDown() override
    {
        obs::set_enabled(false);
        obs::reset();
    }
};

} // namespace

TEST_F(ObsTest, CounterAccumulates)
{
    obs::count("t.counter");
    obs::count("t.counter", 41);
    EXPECT_EQ(obs::counter_value("t.counter"), 42u);
    EXPECT_EQ(obs::counter_value("t.never_touched"), 0u);
}

TEST_F(ObsTest, GaugeSetAndMax)
{
    obs::gauge_set("t.gauge", 5.0);
    obs::gauge_set("t.gauge", 3.0);
    EXPECT_DOUBLE_EQ(obs::gauge_value("t.gauge"), 3.0);

    obs::gauge_max("t.peak", 2.0);
    obs::gauge_max("t.peak", 9.0);
    obs::gauge_max("t.peak", 4.0);
    EXPECT_DOUBLE_EQ(obs::gauge_value("t.peak"), 9.0);
}

TEST_F(ObsTest, HistogramAggregates)
{
    for (const double v : {1.0, 2.0, 3.0, 10.0})
        obs::observe("t.hist", v);
    const auto snap = obs::histogram_snapshot("t.hist");
    EXPECT_EQ(snap.count, 4u);
    EXPECT_DOUBLE_EQ(snap.sum, 16.0);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 10.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 4.0);
}

TEST_F(ObsTest, NonFiniteSamplesQuarantined)
{
    obs::observe("t.hist", std::numeric_limits<double>::quiet_NaN());
    obs::observe("t.hist", std::numeric_limits<double>::infinity());
    obs::observe("t.hist", 1.0);
    const auto snap = obs::histogram_snapshot("t.hist");
    EXPECT_EQ(snap.count, 1u);
    EXPECT_DOUBLE_EQ(snap.sum, 1.0);
    EXPECT_EQ(obs::counter_value("obs.nonfinite_samples"), 2u);
}

// The TSan CI job runs this: concurrent writers to the same counter
// and histogram must race-free sum to exactly the expected totals.
TEST_F(ObsTest, CountersCorrectUnderConcurrentWriters)
{
    constexpr int kThreads = 8;
    constexpr int kIncrements = 5000;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([] {
            for (int i = 0; i < kIncrements; ++i) {
                obs::count("t.shared");
                obs::count("t.shared2", 2);
            }
        });
    }
    for (auto& w : writers)
        w.join();
    EXPECT_EQ(obs::counter_value("t.shared"),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
    EXPECT_EQ(obs::counter_value("t.shared2"),
              2u * kThreads * kIncrements);
}

TEST_F(ObsTest, HistogramsCorrectUnderConcurrentWriters)
{
    constexpr int kThreads = 8;
    constexpr int kSamples = 2000;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([] {
            for (int i = 0; i < kSamples; ++i) {
                obs::observe("t.conc_hist", 1.0);
                obs::gauge_max("t.conc_peak", static_cast<double>(i));
                const obs::Span span("t.conc_span");
            }
        });
    }
    for (auto& w : writers)
        w.join();
    const auto snap = obs::histogram_snapshot("t.conc_hist");
    EXPECT_EQ(snap.count,
              static_cast<std::uint64_t>(kThreads) * kSamples);
    EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(snap.count));
    EXPECT_DOUBLE_EQ(obs::gauge_value("t.conc_peak"),
                     static_cast<double>(kSamples - 1));
    EXPECT_EQ(obs::histogram_snapshot("t.conc_span.us").count,
              static_cast<std::uint64_t>(kThreads) * kSamples);
}

TEST_F(ObsTest, SpansNestAndFeedHistograms)
{
    {
        const obs::Span outer("t.outer");
        {
            const obs::Span inner("t.inner");
        }
        {
            const obs::Span inner("t.inner");
        }
    }
    // Three complete events, inner twice.
    EXPECT_EQ(obs::trace_event_count(), 3u);
    EXPECT_EQ(obs::histogram_snapshot("t.inner.us").count, 2u);
    EXPECT_EQ(obs::histogram_snapshot("t.outer.us").count, 1u);
    // An enclosing span's duration covers its nested spans'.
    EXPECT_GE(obs::histogram_snapshot("t.outer.us").sum,
              obs::histogram_snapshot("t.inner.us").sum);
}

TEST_F(ObsTest, TraceJsonIsValidAndComplete)
{
    {
        const obs::Span span("t.span \"quoted\\name\"");
    }
    obs::trace_counter("t.series", 1.5);
    obs::trace_counter("t.series", 0.5);

    std::ostringstream out;
    obs::write_trace_json(out);
    const std::string text = out.str();

    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_EQ(text.front(), '[');
    // One complete event (ph X) and two counter samples (ph C).
    std::size_t x_events = 0;
    std::size_t c_events = 0;
    for (std::size_t pos = 0;
         (pos = text.find("\"ph\":", pos)) != std::string::npos;
         pos += 5) {
        const char ph = text[text.find('"', pos + 5) + 1];
        x_events += ph == 'X';
        c_events += ph == 'C';
    }
    EXPECT_EQ(x_events, 1u);
    EXPECT_EQ(c_events, 2u);
}

TEST_F(ObsTest, MetricsJsonIsValid)
{
    obs::count("t.counter", 7);
    obs::gauge_set("t.gauge", 1.25);
    obs::observe("t.hist \"weird\\name\"", 3.0);
    std::ostringstream out;
    obs::write_metrics_json(out);
    EXPECT_TRUE(JsonValidator(out.str()).valid()) << out.str();
}

TEST_F(ObsTest, MetricsTextSortedAndTyped)
{
    obs::count("t.b_counter");
    obs::count("t.a_counter");
    obs::gauge_set("t.gauge", 2.0);
    obs::observe("t.hist", 4.0);
    std::ostringstream out;
    obs::write_metrics_text(out);
    const std::string text = out.str();
    const auto a = text.find("counter t.a_counter 1");
    const auto b = text.find("counter t.b_counter 1");
    ASSERT_NE(a, std::string::npos) << text;
    ASSERT_NE(b, std::string::npos) << text;
    EXPECT_LT(a, b); // sorted by name
    EXPECT_NE(text.find("gauge t.gauge 2"), std::string::npos);
    EXPECT_NE(text.find("hist t.hist count 1"), std::string::npos);
}

TEST_F(ObsTest, DisabledRecordsNothing)
{
    obs::set_enabled(false);
    obs::count("t.off");
    obs::gauge_set("t.off_gauge", 1.0);
    obs::observe("t.off_hist", 1.0);
    obs::trace_counter("t.off_series", 1.0);
    {
        const obs::Span span("t.off_span");
    }
    EXPECT_EQ(obs::counter_value("t.off"), 0u);
    EXPECT_DOUBLE_EQ(obs::gauge_value("t.off_gauge"), 0.0);
    EXPECT_EQ(obs::histogram_snapshot("t.off_hist").count, 0u);
    EXPECT_EQ(obs::trace_event_count(), 0u);
}

// The byte-identical-figures contract in miniature: the same
// measurements through the instrumented RunService return the same
// bits with collection off, on, and off again.
TEST_F(ObsTest, RecordingNeverChangesMeasuredValues)
{
    const auto& app = workload::find_app("S.WC");
    const std::vector<sim::NodeId> nodes{0, 1};
    workload::RunConfig cfg;
    cfg.reps = 1;
    cfg.seed = 7;

    const auto run_once = [&] {
        workload::RunService service(2);
        std::vector<workload::RunRequest> reqs;
        reqs.push_back(workload::solo_time_request(app, nodes, cfg));
        reqs.push_back(workload::solo_time_request(app, nodes, cfg));
        return service.run_all(reqs);
    };

    obs::set_enabled(false);
    const auto off = run_once();
    obs::set_enabled(true);
    const auto on = run_once();
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i)
        EXPECT_EQ(off[i], on[i]); // bit-identical, not near

    // And the instrumentation actually fired while enabled.
    EXPECT_EQ(obs::counter_value("runservice.submitted"), 2u);
    EXPECT_EQ(obs::counter_value("runservice.executed"), 1u);
    EXPECT_EQ(obs::counter_value("runservice.cache_hits"), 1u);
}

TEST_F(ObsTest, SessionEnablesAndExports)
{
    obs::set_enabled(false);
    obs::reset();
    const std::string trace_path = "/tmp/imc_test_obs_trace.json";
    const std::string metrics_path = "/tmp/imc_test_obs_metrics.json";
    {
        const Cli cli = make_cli({"--trace-out", trace_path.c_str(),
                                  "--metrics-out",
                                  metrics_path.c_str()});
        const obs::Session session(cli);
        EXPECT_TRUE(obs::enabled());
        obs::count("t.from_session");
        const obs::Span span("t.session_span");
    }
    EXPECT_FALSE(obs::enabled());

    std::ifstream trace(trace_path);
    ASSERT_TRUE(trace.good());
    std::stringstream trace_text;
    trace_text << trace.rdbuf();
    EXPECT_TRUE(JsonValidator(trace_text.str()).valid());
    EXPECT_NE(trace_text.str().find("t.session_span"),
              std::string::npos);

    std::ifstream metrics(metrics_path);
    ASSERT_TRUE(metrics.good());
    std::stringstream metrics_text;
    metrics_text << metrics.rdbuf();
    EXPECT_TRUE(JsonValidator(metrics_text.str()).valid());
    EXPECT_NE(metrics_text.str().find("t.from_session"),
              std::string::npos);

    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
}

TEST_F(ObsTest, SessionWithoutFlagsIsInert)
{
    obs::set_enabled(false);
    {
        const Cli cli = make_cli({"--seed", "42"});
        const obs::Session session(cli);
        EXPECT_FALSE(obs::enabled());
    }
    EXPECT_FALSE(obs::enabled());
}

TEST_F(ObsTest, ResetDropsEverything)
{
    obs::count("t.counter");
    obs::observe("t.hist", 1.0);
    {
        const obs::Span span("t.span");
    }
    obs::reset();
    EXPECT_EQ(obs::counter_value("t.counter"), 0u);
    EXPECT_EQ(obs::histogram_snapshot("t.hist").count, 0u);
    EXPECT_EQ(obs::trace_event_count(), 0u);
}
