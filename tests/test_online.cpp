/**
 * @file
 * Tests of the online refinement extension (the paper's future-work
 * direction): corrections learn from observations, stay bounded, and
 * do not leak across pressure bands.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "core/online.hpp"

using namespace imc;
using namespace imc::core;

namespace {

InterferenceModel
base_model()
{
    return InterferenceModel(
        "M.test",
        SensitivityMatrix({{1.0, 1.05, 1.08, 1.10, 1.12},
                           {1.0, 1.30, 1.35, 1.38, 1.40},
                           {1.0, 1.60, 1.70, 1.76, 1.80}},
                          {1.0, 4.0, 8.0}),
        HeteroPolicy::NPlus1Max, 2.0);
}

} // namespace

TEST(OnlineRefiner, StartsEqualToStaticModel)
{
    const OnlineRefiner refiner(base_model());
    const std::vector<double> pressures{6.0, 2.0, 0.0, 0.0};
    EXPECT_DOUBLE_EQ(refiner.predict(pressures),
                     refiner.predict_static(pressures));
    EXPECT_EQ(refiner.observations(), 0);
}

TEST(OnlineRefiner, LearnsSystematicUnderprediction)
{
    OnlineRefiner refiner(base_model(), 0.5);
    const std::vector<double> pressures{6.0, 6.0, 0.0, 0.0};
    const double static_pred = refiner.predict_static(pressures);
    // Reality is consistently 20% above the static model.
    for (int i = 0; i < 20; ++i)
        refiner.observe(pressures, static_pred * 1.2);
    EXPECT_NEAR(refiner.predict(pressures), static_pred * 1.2,
                static_pred * 0.02);
}

TEST(OnlineRefiner, LearnsOverpredictionToo)
{
    OnlineRefiner refiner(base_model(), 0.5);
    const std::vector<double> pressures{6.0, 6.0, 6.0, 6.0};
    const double static_pred = refiner.predict_static(pressures);
    for (int i = 0; i < 20; ++i)
        refiner.observe(pressures, static_pred * 0.8);
    EXPECT_NEAR(refiner.predict(pressures), static_pred * 0.8,
                static_pred * 0.02);
}

TEST(OnlineRefiner, BandsAreIndependent)
{
    OnlineRefiner refiner(base_model(), 0.5, 4);
    const std::vector<double> heavy{8.0, 8.0, 8.0, 8.0};
    const std::vector<double> light{1.0, 0.0, 0.0, 0.0};
    const double light_before = refiner.predict(light);
    for (int i = 0; i < 20; ++i)
        refiner.observe(heavy, refiner.predict_static(heavy) * 1.5);
    // Heavy-band learning must not move light-band predictions.
    EXPECT_DOUBLE_EQ(refiner.predict(light), light_before);
    EXPECT_GT(refiner.predict(heavy),
              refiner.predict_static(heavy) * 1.3);
}

TEST(OnlineRefiner, CorrectionsAreClamped)
{
    OnlineRefiner refiner(base_model(), 1.0);
    const std::vector<double> pressures{8.0, 8.0, 8.0, 8.0};
    // A wild outlier: 100x the prediction.
    refiner.observe(pressures,
                    refiner.predict_static(pressures) * 100.0);
    EXPECT_LE(refiner.correction_at(8.0), 2.0 + 1e-12);
    refiner.observe(pressures,
                    refiner.predict_static(pressures) * 0.001);
    EXPECT_GE(refiner.correction_at(8.0), 0.5 * 0.5 - 1e-12);
}

TEST(OnlineRefiner, SoloObservationsIgnored)
{
    OnlineRefiner refiner(base_model(), 0.5);
    const std::vector<double> clean{0.0, 0.0, 0.0, 0.0};
    refiner.observe(clean, 5.0);
    EXPECT_EQ(refiner.observations(), 0);
    EXPECT_DOUBLE_EQ(refiner.predict(clean), 1.0);
}

TEST(OnlineRefiner, ValidatesArguments)
{
    EXPECT_THROW(OnlineRefiner(base_model(), 0.0), ConfigError);
    EXPECT_THROW(OnlineRefiner(base_model(), 1.5), ConfigError);
    EXPECT_THROW(OnlineRefiner(base_model(), 0.5, 0), ConfigError);
    OnlineRefiner refiner(base_model());
    EXPECT_THROW(refiner.observe({1.0}, 0.0), ConfigError);
}

// Regression: a NaN pressure used to survive std::clamp (NaN
// propagates through it) and reach a double->size_t cast in
// bucket_of, which is undefined behaviour — under UBSan this test
// crashed before the guards landed. Non-finite inputs must instead
// be a clear ConfigError.
TEST(OnlineRefiner, NonFinitePressuresRejected)
{
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    constexpr double inf = std::numeric_limits<double>::infinity();
    OnlineRefiner refiner(base_model(), 0.5);

    EXPECT_THROW(refiner.correction_at(nan), ConfigError);
    EXPECT_THROW(refiner.correction_at(inf), ConfigError);
    EXPECT_THROW(refiner.correction_at(-inf), ConfigError);

    EXPECT_THROW(refiner.observe({4.0, nan, 0.0, 0.0}, 1.5),
                 ConfigError);
    EXPECT_THROW(refiner.observe({4.0, inf, 0.0, 0.0}, 1.5),
                 ConfigError);

    // And the refiner must be untouched by the rejected updates.
    EXPECT_EQ(refiner.observations(), 0);
}

TEST(OnlineRefiner, NonFiniteObservationRejected)
{
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    constexpr double inf = std::numeric_limits<double>::infinity();
    OnlineRefiner refiner(base_model(), 0.5);
    const std::vector<double> pressures{4.0, 4.0, 0.0, 0.0};

    EXPECT_THROW(refiner.observe(pressures, nan), ConfigError);
    EXPECT_THROW(refiner.observe(pressures, inf), ConfigError);
    EXPECT_EQ(refiner.observations(), 0);

    refiner.observe(pressures, 1.5); // finite still works
    EXPECT_EQ(refiner.observations(), 1);
}

TEST(OnlineRefiner, EwmaConvergesGeometrically)
{
    OnlineRefiner refiner(base_model(), 0.25);
    const std::vector<double> pressures{4.0, 4.0, 0.0, 0.0};
    const double target = 1.4;
    const double base = refiner.predict_static(pressures);
    double prev_gap = 1e9;
    for (int i = 0; i < 10; ++i) {
        refiner.observe(pressures, base * target);
        const double gap =
            std::abs(refiner.predict(pressures) / base - target);
        EXPECT_LT(gap, prev_gap + 1e-12); // monotone approach
        prev_gap = gap;
    }
}
