/**
 * @file
 * Unit tests of the placement representation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "placement/mixes.hpp"
#include "placement/placement.hpp"
#include "workload/catalog.hpp"

using namespace imc;
using namespace imc::placement;
using namespace imc::workload;

namespace {

std::vector<Instance>
four_instances()
{
    return {
        Instance{find_app("M.milc"), 4},
        Instance{find_app("M.Gems"), 4},
        Instance{find_app("H.KM"), 4},
        Instance{find_app("C.libq"), 4},
    };
}

sim::ClusterSpec
cluster()
{
    return sim::ClusterSpec::private8();
}

/** A hand-built valid pairing: (0,1) on nodes 0-3, (2,3) on 4-7. */
Placement
paired()
{
    Placement p(four_instances(), 8, 2);
    for (int u = 0; u < 4; ++u) {
        p.assign(0, u, u);
        p.assign(1, u, u);
        p.assign(2, u, 4 + u);
        p.assign(3, u, 4 + u);
    }
    return p;
}

} // namespace

TEST(Placement, UnassignedIsInvalid)
{
    const Placement p(four_instances(), 8, 2);
    EXPECT_FALSE(p.valid());
}

TEST(Placement, HandBuiltPairingIsValid)
{
    EXPECT_TRUE(paired().valid());
}

TEST(Placement, NodesOfSorted)
{
    const auto p = paired();
    EXPECT_EQ(p.nodes_of(2), (std::vector<sim::NodeId>{4, 5, 6, 7}));
}

TEST(Placement, SlotOverflowDetected)
{
    Placement p(four_instances(), 8, 2);
    for (int u = 0; u < 4; ++u) {
        p.assign(0, u, 0); // invalid: same node 4x for instance 0
        p.assign(1, u, 1);
        p.assign(2, u, 2);
        p.assign(3, u, 3);
    }
    EXPECT_FALSE(p.valid());
}

TEST(Placement, SameInstanceTwiceOnNodeDetected)
{
    Placement p = paired();
    // Move instance 0's unit 1 onto node 0 where unit 0 already is.
    p.assign(0, 1, 0);
    EXPECT_FALSE(p.valid());
}

TEST(Placement, CoTenantsFindsPartner)
{
    const auto p = paired();
    EXPECT_EQ(p.co_tenants(0, 0), (std::vector<int>{1}));
    EXPECT_EQ(p.co_tenants(2, 5), (std::vector<int>{3}));
    // co_tenants reports everyone else on the node, regardless of
    // whether the queried instance itself occupies it.
    EXPECT_EQ(p.co_tenants(0, 4), (std::vector<int>{2, 3}));
}

TEST(Placement, PressureListsUseOthersScores)
{
    const auto p = paired();
    const std::vector<double> scores{4.0, 2.0, 0.5, 6.0};
    const auto lists = p.pressure_lists(scores);
    // Instance 0 shares all nodes with instance 1 (score 2).
    EXPECT_EQ(lists[0], (std::vector<double>{2, 2, 2, 2}));
    // Instance 1 sees instance 0 (score 4).
    EXPECT_EQ(lists[1], (std::vector<double>{4, 4, 4, 4}));
    // Instance 2 sees C.libq's score 6.
    EXPECT_EQ(lists[2], (std::vector<double>{6, 6, 6, 6}));
}

TEST(Placement, PressureListsScoreCountChecked)
{
    EXPECT_THROW(paired().pressure_lists({1.0}), ConfigError);
}

TEST(Placement, SwapValidityRules)
{
    const auto p = paired();
    // Swapping units of the same instance is never valid.
    EXPECT_FALSE(p.swap_is_valid(0, 0, 0, 1));
    // Swapping two co-located units is a no-op (same node).
    EXPECT_FALSE(p.swap_is_valid(0, 0, 1, 0));
    // Instance 0 unit 0 (node 0) with instance 2 unit 0 (node 4):
    // valid — neither occupies the other's node.
    EXPECT_TRUE(p.swap_is_valid(0, 0, 2, 0));
    // Instance 0 unit 0 (node 0) with instance 1 unit 1 (node 1):
    // invalid — instance 0 already has a unit on node 1.
    EXPECT_FALSE(p.swap_is_valid(0, 0, 1, 1));
}

TEST(Placement, SwapPreservesValidityWhenChecked)
{
    auto p = paired();
    ASSERT_TRUE(p.swap_is_valid(0, 0, 2, 0));
    p.swap_units(0, 0, 2, 0);
    EXPECT_TRUE(p.valid());
    EXPECT_EQ(p.node_of(0, 0), 4);
    EXPECT_EQ(p.node_of(2, 0), 0);
}

TEST(Placement, RandomPlacementsAreValidAndVaried)
{
    Rng rng(17);
    std::set<std::string> layouts;
    for (int i = 0; i < 20; ++i) {
        const auto p =
            Placement::random(four_instances(), cluster(), rng);
        ASSERT_TRUE(p.valid());
        layouts.insert(p.to_string());
    }
    EXPECT_GT(layouts.size(), 5u); // genuinely random
}

TEST(Placement, RejectsOverfullConfigurations)
{
    std::vector<Instance> too_many(5, Instance{find_app("M.milc"), 4});
    EXPECT_THROW(Placement(too_many, 8, 2), ConfigError);
    EXPECT_THROW(Placement({Instance{find_app("M.milc"), 9}}, 8, 2),
                 ConfigError);
}

TEST(Placement, ToStringListsTenants)
{
    const auto s = paired().to_string();
    EXPECT_NE(s.find("M.milc"), std::string::npos);
    EXPECT_NE(s.find("n0:["), std::string::npos);
}

TEST(Mixes, Table5HasTenMixesOfFour)
{
    const auto& mixes = table5_mixes();
    ASSERT_EQ(mixes.size(), 10u);
    for (const auto& mix : mixes) {
        EXPECT_EQ(mix.apps.size(), 4u) << mix.name;
        for (const auto& abbrev : mix.apps)
            EXPECT_NO_THROW(find_app(abbrev)) << abbrev;
        EXPECT_EQ(mix.qos_index, -1);
    }
    EXPECT_EQ(mixes.front().name, "HW1");
    EXPECT_EQ(mixes.back().name, "L");
}

TEST(Mixes, QosMixesNameACriticalApp)
{
    for (const auto& mix : qos_mixes()) {
        EXPECT_EQ(mix.apps.size(), 4u);
        EXPECT_GE(mix.qos_index, 0);
        EXPECT_LT(mix.qos_index, 4);
        // The critical app must be distributed (QoS for parallel apps).
        EXPECT_TRUE(find_app(mix.apps[static_cast<std::size_t>(
                                 mix.qos_index)])
                        .distributed());
    }
}

TEST(Mixes, InstantiateSplitsSlotsEvenly)
{
    const auto instances =
        instantiate(table5_mixes().front(), cluster());
    ASSERT_EQ(instances.size(), 4u);
    for (const auto& inst : instances)
        EXPECT_EQ(inst.units, 4);
}

TEST(Mixes, Hm3ContainsGemsTwice)
{
    const auto& hm3 = table5_mixes()[5];
    ASSERT_EQ(hm3.name, "HM3");
    EXPECT_EQ(std::count(hm3.apps.begin(), hm3.apps.end(),
                         std::string("M.Gems")),
              2);
    // Two instances of the same app must instantiate independently.
    const auto instances = instantiate(hm3, cluster());
    EXPECT_EQ(instances[2].app.abbrev, "M.Gems");
    EXPECT_EQ(instances[3].app.abbrev, "M.Gems");
}
