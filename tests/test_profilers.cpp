/**
 * @file
 * Tests of the profiling algorithms against synthetic measure
 * functions with known shapes, checking both accuracy and cost.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "core/profilers.hpp"

using namespace imc;
using namespace imc::core;

namespace {

/** Analytic "high propagation" surface: jump at j=1, slow rise. */
double
high_prop(int pressure, int nodes)
{
    if (nodes == 0)
        return 1.0;
    const double depth = 0.12 * pressure;
    return 1.0 + depth * (0.8 + 0.2 * nodes / 8.0);
}

/** Analytic proportional surface. */
double
proportional(int pressure, int nodes)
{
    return 1.0 + 0.10 * pressure * nodes / 8.0;
}

/** Analytic flat (insensitive) surface. */
double
flat(int, int nodes)
{
    return nodes == 0 ? 1.0 : 1.01;
}

ProfileOptions
opts8()
{
    ProfileOptions o;
    // Plain integer grid 1..8 so the analytic surfaces (functions of
    // the level index) remain straightforward.
    o.grid = {1, 2, 3, 4, 5, 6, 7, 8};
    o.hosts = 8;
    o.epsilon = 0.05;
    return o;
}

} // namespace

TEST(ProfileExhaustive, ReproducesSurfaceExactly)
{
    CountingMeasure measure{MeasureFn(high_prop)};
    const auto result = profile_exhaustive(measure, opts8());
    EXPECT_EQ(result.measured, 64);
    EXPECT_EQ(result.total_settings, 64);
    EXPECT_DOUBLE_EQ(result.cost(), 1.0);
    for (int p = 1; p <= 8; ++p) {
        for (int j = 0; j <= 8; ++j)
            EXPECT_DOUBLE_EQ(result.matrix.at(p, j), high_prop(p, j));
    }
}

// Regression: the timing span and the cost counters of one profiling
// run must share a single "profiler.<algo>" prefix. The span used to
// be named "profile.<algo>" while the counters were
// "profiler.<algo>.*", so one grep over a metrics dump could never
// find a whole algorithm's row.
TEST(ProfileExhaustive, ObsSpanAndCountersShareOnePrefix)
{
    obs::reset();
    obs::set_enabled(true);
    {
        CountingMeasure measure{MeasureFn(high_prop)};
        (void)profile_exhaustive(measure, opts8());
    }
    EXPECT_EQ(obs::counter_value("profiler.exhaustive.runs"), 1u);
    EXPECT_EQ(obs::counter_value("profiler.exhaustive.measured"),
              64u);
    EXPECT_EQ(
        obs::histogram_snapshot("profiler.exhaustive.us").count, 1u);
    obs::set_enabled(false);
    obs::reset();
}

TEST(CountingMeasure, CachesAndCounts)
{
    int calls = 0;
    CountingMeasure measure{[&](int, int) {
        ++calls;
        return 1.5;
    }};
    EXPECT_DOUBLE_EQ(measure(1, 1), 1.5);
    EXPECT_DOUBLE_EQ(measure(1, 1), 1.5);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(measure.measured(), 1);
    // j = 0 is free and never invokes the inner function.
    EXPECT_DOUBLE_EQ(measure(5, 0), 1.0);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(measure.measured(), 1);
}

TEST(ProfileBinaryBrute, CheaperThanExhaustiveAndAccurate)
{
    CountingMeasure truth_measure{MeasureFn(high_prop)};
    const auto truth = profile_exhaustive(truth_measure, opts8());

    CountingMeasure measure{MeasureFn(high_prop)};
    const auto result = profile_binary_brute(measure, opts8());
    EXPECT_LT(result.measured, 64);
    EXPECT_LT(matrix_error_pct(result.matrix, truth.matrix), 1.0);
}

TEST(ProfileBinaryBrute, FlatSurfaceCostsAlmostNothing)
{
    CountingMeasure measure{MeasureFn(flat)};
    const auto result = profile_binary_brute(measure, opts8());
    // Only the per-row right endpoints are mandatory.
    EXPECT_EQ(result.measured, 8);
    EXPECT_NEAR(result.cost(), 0.125, 1e-12);
}

TEST(ProfileBinaryOptimized, CheaperThanBinaryBrute)
{
    CountingMeasure brute_measure{MeasureFn(high_prop)};
    const auto brute = profile_binary_brute(brute_measure, opts8());

    CountingMeasure opt_measure{MeasureFn(high_prop)};
    const auto optimized = profile_binary_optimized(opt_measure, opts8());
    EXPECT_LT(optimized.measured, brute.measured);
}

TEST(ProfileBinaryOptimized, AccurateWhenShapesScale)
{
    // high_prop's rows are exact scalings of each other, the
    // assumption Algorithm 2 exploits: error must be ~zero.
    CountingMeasure truth_measure{MeasureFn(high_prop)};
    const auto truth = profile_exhaustive(truth_measure, opts8());

    CountingMeasure measure{MeasureFn(high_prop)};
    const auto result = profile_binary_optimized(measure, opts8());
    EXPECT_LT(matrix_error_pct(result.matrix, truth.matrix), 0.5);
}

TEST(ProfileBinaryOptimized, ProportionalSurface)
{
    CountingMeasure truth_measure{MeasureFn(proportional)};
    const auto truth = profile_exhaustive(truth_measure, opts8());

    CountingMeasure measure{MeasureFn(proportional)};
    const auto result = profile_binary_optimized(measure, opts8());
    EXPECT_LT(matrix_error_pct(result.matrix, truth.matrix), 2.0);
    EXPECT_LT(result.cost(), 0.5);
}

TEST(ProfileRandom, RespectsBudgetRoughly)
{
    CountingMeasure measure{MeasureFn(high_prop)};
    const auto result =
        profile_random(measure, opts8(), 0.5, Rng(42));
    EXPECT_NEAR(result.cost(), 0.5, 0.02);
}

TEST(ProfileRandom, ThirtyPercentWorseThanFifty)
{
    CountingMeasure truth_measure{MeasureFn(high_prop)};
    const auto truth = profile_exhaustive(truth_measure, opts8());

    double err30 = 0.0;
    double err50 = 0.0;
    // Average over seeds to avoid a lucky draw.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        CountingMeasure m30{MeasureFn(high_prop)};
        err30 += matrix_error_pct(
            profile_random(m30, opts8(), 0.3, Rng(seed)).matrix,
            truth.matrix);
        CountingMeasure m50{MeasureFn(high_prop)};
        err50 += matrix_error_pct(
            profile_random(m50, opts8(), 0.5, Rng(seed)).matrix,
            truth.matrix);
    }
    EXPECT_LE(err50, err30);
}

TEST(ProfileRandom, FractionValidated)
{
    CountingMeasure measure{MeasureFn(flat)};
    const auto o = opts8();
    EXPECT_THROW(profile_random(measure, o, 0.0, Rng(1)), ConfigError);
    EXPECT_THROW(profile_random(measure, o, 1.5, Rng(1)), ConfigError);
}

TEST(Profilers, MatrixErrorPctZeroOnIdentical)
{
    CountingMeasure measure{MeasureFn(high_prop)};
    const auto r = profile_exhaustive(measure, opts8());
    EXPECT_DOUBLE_EQ(matrix_error_pct(r.matrix, r.matrix), 0.0);
}

TEST(Profilers, MatrixErrorPctDimensionChecked)
{
    const SensitivityMatrix a({{1.0, 1.5}});
    const SensitivityMatrix b({{1.0, 1.5, 1.6}});
    EXPECT_THROW(matrix_error_pct(a, b), ConfigError);
}

// Parameterized sweep over analytic surfaces: every algorithm must
// stay within sane error and cost envelopes.
struct SurfaceCase {
    const char* name;
    std::function<double(int, int)> surface;
    double max_err_pct;
};

class ProfilerSweep : public ::testing::TestWithParam<SurfaceCase> {};

TEST_P(ProfilerSweep, AllAlgorithmsWithinEnvelope)
{
    const auto& param = GetParam();
    CountingMeasure truth_measure{MeasureFn(param.surface)};
    const auto truth = profile_exhaustive(truth_measure, opts8());

    CountingMeasure brute{MeasureFn(param.surface)};
    const auto r1 = profile_binary_brute(brute, opts8());
    EXPECT_LT(matrix_error_pct(r1.matrix, truth.matrix),
              param.max_err_pct);

    CountingMeasure opt{MeasureFn(param.surface)};
    const auto r2 = profile_binary_optimized(opt, opts8());
    EXPECT_LT(matrix_error_pct(r2.matrix, truth.matrix),
              param.max_err_pct);
    EXPECT_LE(r2.measured, r1.measured);

    CountingMeasure rnd{MeasureFn(param.surface)};
    const auto r3 = profile_random(rnd, opts8(), 0.5, Rng(7));
    EXPECT_LT(matrix_error_pct(r3.matrix, truth.matrix),
              param.max_err_pct * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Surfaces, ProfilerSweep,
    ::testing::Values(
        SurfaceCase{"high", high_prop, 2.0},
        SurfaceCase{"proportional", proportional, 3.0},
        SurfaceCase{"flat", flat, 1.0},
        SurfaceCase{"knee",
                    [](int p, int j) {
                        if (j == 0)
                            return 1.0;
                        const double depth =
                            p >= 6 ? 0.1 * (p - 5) : 0.01 * p;
                        return 1.0 + depth * (1.0 + 0.05 * j);
                    },
                    4.0}),
    [](const ::testing::TestParamInfo<SurfaceCase>& param_info) {
        return param_info.param.name;
    });
