/**
 * @file
 * Cross-module property tests: randomized invariants over the
 * contention model, the placement representation, the profiling
 * algorithms, and the engine counters. These complement the
 * per-module unit tests by sweeping configuration space instead of
 * pinning single cases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bubble/bubble.hpp"
#include "common/rng.hpp"
#include "core/profilers.hpp"
#include "placement/placement.hpp"
#include "sim/contention.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"

using namespace imc;

namespace {

sim::TenantDemand
random_demand(Rng& rng)
{
    sim::TenantDemand d;
    d.gen_mb = rng.uniform(0.5, 30.0);
    d.need_mb = rng.uniform(0.5, 20.0);
    d.bw_gbps = rng.uniform(0.5, 25.0);
    d.mem_intensity = rng.uniform(0.0, 1.0);
    d.cache_gamma = rng.uniform(0.3, 2.0);
    d.knee_sharpness = rng.uniform(1.0, 10.0);
    return d;
}

} // namespace

// ----- Contention model ----------------------------------------------

class ContentionProperties : public ::testing::TestWithParam<int> {};

TEST_P(ContentionProperties, SlowdownsFiniteAndAtLeastCpuFloor)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const sim::NodeResources node{20.0, 30.0, 0.75};
    for (int trial = 0; trial < 200; ++trial) {
        const int k = static_cast<int>(rng.uniform_int(1, 5));
        std::vector<sim::TenantDemand> tenants;
        for (int i = 0; i < k; ++i)
            tenants.push_back(random_demand(rng));
        const auto results = sim::solve_contention(node, tenants);
        ASSERT_EQ(results.size(), tenants.size());
        double share_sum = 0.0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_TRUE(std::isfinite(results[i].slowdown));
            // A tenant can never run faster than its CPU-bound floor.
            ASSERT_GE(results[i].slowdown,
                      1.0 - tenants[i].mem_intensity - 1e-9);
            ASSERT_GE(results[i].miss_inflation, 1.0 - 1e-9);
            share_sum += results[i].cache_share_mb;
        }
        // Cache shares partition the LLC exactly.
        ASSERT_NEAR(share_sum, node.llc_mb, 1e-6);
    }
}

TEST_P(ContentionProperties, AddingATenantNeverHelpsAnyone)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    const sim::NodeResources node{20.0, 30.0, 0.75};
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<sim::TenantDemand> tenants{random_demand(rng),
                                               random_demand(rng)};
        const auto before = sim::solve_contention(node, tenants);
        tenants.push_back(random_demand(rng));
        const auto after = sim::solve_contention(node, tenants);
        for (std::size_t i = 0; i < before.size(); ++i)
            ASSERT_GE(after[i].slowdown, before[i].slowdown - 1e-9);
    }
}

TEST_P(ContentionProperties, ResultOrderIndependentOfTenantOrder)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
    const sim::NodeResources node{20.0, 30.0, 0.75};
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<sim::TenantDemand> tenants{
            random_demand(rng), random_demand(rng),
            random_demand(rng)};
        const auto forward = sim::solve_contention(node, tenants);
        std::vector<sim::TenantDemand> reversed(tenants.rbegin(),
                                                tenants.rend());
        const auto backward = sim::solve_contention(node, reversed);
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            ASSERT_NEAR(forward[i].slowdown,
                        backward[tenants.size() - 1 - i].slowdown,
                        1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentionProperties,
                         ::testing::Range(1, 4));

// ----- Bubble scale ---------------------------------------------------

TEST(BubbleProperties, CombineIsCommutativeAndMonotone)
{
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        const double a = rng.uniform(0.1, 8.0);
        const double b = rng.uniform(0.1, 8.0);
        const double ab = bubble::combine_pressures({a, b});
        const double ba = bubble::combine_pressures({b, a});
        ASSERT_NEAR(ab, ba, 1e-9);
        ASSERT_GE(ab, std::max(a, b) - 1e-9);
        // Adding a third tenant never lowers the combined pressure.
        const double c = rng.uniform(0.1, 8.0);
        ASSERT_GE(bubble::combine_pressures({a, b, c}), ab - 1e-9);
    }
}

// ----- Placement representation ---------------------------------------

class PlacementFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PlacementFuzz, RandomValidSwapSequencesPreserveInvariants)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    const auto cluster = sim::ClusterSpec::private8();
    std::vector<placement::Instance> instances{
        {workload::find_app("M.milc"), 4},
        {workload::find_app("M.Gems"), 4},
        {workload::find_app("H.KM"), 4},
        {workload::find_app("C.libq"), 4},
    };
    auto p = placement::Placement::random(instances, cluster, rng);
    const std::vector<double> scores{4.3, 2.4, 0.2, 6.6};
    for (int step = 0; step < 300; ++step) {
        const int ia = static_cast<int>(rng.uniform_index(4));
        const int ib = static_cast<int>(rng.uniform_index(4));
        const int ua = static_cast<int>(rng.uniform_index(4));
        const int ub = static_cast<int>(rng.uniform_index(4));
        if (!p.swap_is_valid(ia, ua, ib, ub))
            continue;
        p.swap_units(ia, ua, ib, ub);
        ASSERT_TRUE(p.valid());
        // Pressure lists stay consistent: per instance, one entry per
        // unit, all non-negative, and zero exactly when the instance
        // is alone on that node.
        const auto lists = p.pressure_lists(scores);
        for (int i = 0; i < 4; ++i) {
            const auto nodes = p.nodes_of(i);
            ASSERT_EQ(lists[static_cast<std::size_t>(i)].size(),
                      nodes.size());
            for (std::size_t k = 0; k < nodes.size(); ++k) {
                const bool alone =
                    p.co_tenants(i, nodes[k]).empty();
                const double pressure =
                    lists[static_cast<std::size_t>(i)][k];
                ASSERT_GE(pressure, 0.0);
                ASSERT_EQ(pressure == 0.0, alone);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementFuzz, ::testing::Range(1, 5));

// ----- Profiling algorithms -------------------------------------------

class ProfilerEpsilonSweep : public ::testing::TestWithParam<double> {
};

TEST_P(ProfilerEpsilonSweep, TighterEpsilonNeverCostsLess)
{
    const double epsilon = GetParam();
    const core::MeasureFn surface = [](int p, int j) {
        if (j == 0)
            return 1.0;
        return 1.0 + 0.1 * p * (0.7 + 0.3 * j / 8.0);
    };
    core::ProfileOptions loose;
    loose.grid = {1, 2, 3, 4, 5, 6, 7, 8};
    loose.epsilon = epsilon;
    core::ProfileOptions tight = loose;
    tight.epsilon = epsilon / 4.0;

    core::CountingMeasure m_loose{surface};
    const auto r_loose = core::profile_binary_brute(m_loose, loose);
    core::CountingMeasure m_tight{surface};
    const auto r_tight = core::profile_binary_brute(m_tight, tight);
    EXPECT_GE(r_tight.measured, r_loose.measured);

    // And accuracy is monotone the other way (not strictly, but the
    // tight run must not be meaningfully worse).
    core::CountingMeasure m_truth{surface};
    const auto truth = core::profile_exhaustive(m_truth, loose);
    EXPECT_LE(core::matrix_error_pct(r_tight.matrix, truth.matrix),
              core::matrix_error_pct(r_loose.matrix, truth.matrix) +
                  0.1);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ProfilerEpsilonSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2));

// ----- Engine counters --------------------------------------------------

TEST(EngineStats, CountersTrackActivity)
{
    sim::Simulation sim(sim::ClusterSpec::private8());
    EXPECT_EQ(sim.stats().contention_solves, 0u);

    const auto t1 = sim.add_tenant(0, bubble::bubble_demand(3.0));
    EXPECT_EQ(sim.stats().contention_solves, 1u);
    const auto p1 = sim.add_proc(t1);
    sim.compute(p1, 10.0, [] {});
    EXPECT_EQ(sim.stats().computes, 1u);

    // A tenant arriving mid-compute must reschedule the busy proc.
    sim.schedule(2.0, [&] {
        sim.add_tenant(0, bubble::bubble_demand(8.0));
    });
    sim.run();
    EXPECT_EQ(sim.stats().contention_solves, 2u);
    EXPECT_EQ(sim.stats().proc_reschedules, 1u);
}

TEST(EngineStats, NoReschedulesWithoutCoLocation)
{
    sim::Simulation sim(sim::ClusterSpec::private8());
    const auto t1 = sim.add_tenant(0, bubble::bubble_demand(3.0));
    const auto p1 = sim.add_proc(t1);
    sim.compute(p1, 5.0, [] {});
    // Tenant on a DIFFERENT node: no reschedule of p1.
    sim.schedule(1.0, [&] {
        sim.add_tenant(1, bubble::bubble_demand(8.0));
    });
    sim.run();
    EXPECT_EQ(sim.stats().proc_reschedules, 0u);
}
