/**
 * @file
 * Tests of the end-to-end model building pipeline (registry).
 *
 * These run real (small) profiling campaigns against the simulator,
 * so they use shortened applications and few repetitions.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/registry.hpp"
#include "workload/catalog.hpp"

using namespace imc;
using namespace imc::core;
using namespace imc::workload;

namespace {

RunConfig
fast_cfg()
{
    RunConfig cfg;
    cfg.reps = 1;
    cfg.seed = 55;
    return cfg;
}

ModelBuildOptions
fast_opts()
{
    ModelBuildOptions opts;
    opts.algorithm = ProfileAlgorithm::BinaryOptimized;
    opts.policy_samples = 8;
    return opts;
}

} // namespace

TEST(ModelRegistry, BuildsAndCachesModels)
{
    ModelRegistry registry(fast_cfg(), fast_opts());
    const auto& app = find_app("M.zeus");
    const auto& first = registry.model(app, 4);
    const auto& second = registry.model(app, 4);
    EXPECT_EQ(&first, &second); // cached, not rebuilt
    EXPECT_EQ(first.model.app(), "M.zeus");
    EXPECT_EQ(first.model.matrix().hosts(), 4);
    EXPECT_EQ(first.model.matrix().pressure_levels(),
              static_cast<int>(default_pressure_grid().size()));
}

TEST(ModelRegistry, DistinctDeploymentSizesAreDistinctModels)
{
    ModelRegistry registry(fast_cfg(), fast_opts());
    const auto& app = find_app("M.zeus");
    const auto& four = registry.model(app, 4);
    const auto& eight = registry.model(app, 8);
    EXPECT_EQ(four.model.matrix().hosts(), 4);
    EXPECT_EQ(eight.model.matrix().hosts(), 8);
}

TEST(ModelRegistry, ProfileCostBelowExhaustive)
{
    ModelRegistry registry(fast_cfg(), fast_opts());
    const auto& built = registry.model(find_app("M.milc"), 8);
    EXPECT_GT(built.profile_cost, 0.0);
    EXPECT_LT(built.profile_cost, 0.7);
}

TEST(ModelRegistry, PolicyFitsCoverAllFourPolicies)
{
    ModelRegistry registry(fast_cfg(), fast_opts());
    const auto& built = registry.model(find_app("H.KM"), 4);
    ASSERT_EQ(built.policy_fits.size(), 4u);
    for (const auto& fit : built.policy_fits)
        EXPECT_GE(fit.avg_error_pct, 0.0);
}

TEST(ModelRegistry, BubbleScoreRoughlyMatchesCalibrationTarget)
{
    ModelRegistry registry(fast_cfg(), fast_opts());
    // Gentle and aggressive applications must be separated.
    const double km =
        registry.model(find_app("H.KM"), 4).model.bubble_score();
    const double libq =
        registry.model(find_app("C.libq"), 4).model.bubble_score();
    EXPECT_LT(km, 2.0);
    EXPECT_GT(libq, 4.0);
}

TEST(ModelRegistry, MatrixColumnZeroIsUnity)
{
    ModelRegistry registry(fast_cfg(), fast_opts());
    const auto& built = registry.model(find_app("M.lmps"), 4);
    for (int p = 1; p <= built.model.matrix().pressure_levels(); ++p)
        EXPECT_DOUBLE_EQ(built.model.matrix().at(p, 0), 1.0);
}

TEST(ModelRegistry, DeploymentSizeValidated)
{
    ModelRegistry registry(fast_cfg(), fast_opts());
    EXPECT_THROW(registry.model(find_app("M.lmps"), 0), imc::ConfigError);
    EXPECT_THROW(registry.model(find_app("M.lmps"), 99), imc::ConfigError);
}

TEST(RunProfiler, DispatchesAllAlgorithms)
{
    const MeasureFn surface = [](int p, int j) {
        return j == 0 ? 1.0 : 1.0 + 0.05 * p + 0.01 * j;
    };
    ProfileOptions opts;
    for (const auto algorithm :
         {ProfileAlgorithm::Exhaustive, ProfileAlgorithm::BinaryBrute,
          ProfileAlgorithm::BinaryOptimized, ProfileAlgorithm::Random30,
          ProfileAlgorithm::Random50}) {
        CountingMeasure measure{surface};
        const auto result = run_profiler(algorithm, measure, opts, 5);
        EXPECT_EQ(result.matrix.hosts(), opts.hosts)
            << to_string(algorithm);
        EXPECT_GT(result.measured, 0) << to_string(algorithm);
    }
}

TEST(RunProfiler, NamesMatchPaper)
{
    EXPECT_EQ(to_string(ProfileAlgorithm::BinaryBrute), "binary-brute");
    EXPECT_EQ(to_string(ProfileAlgorithm::BinaryOptimized),
              "binary-optimized");
    EXPECT_EQ(to_string(ProfileAlgorithm::Random30), "random-30%");
    EXPECT_EQ(to_string(ProfileAlgorithm::Random50), "random-50%");
    EXPECT_EQ(to_string(ProfileAlgorithm::Exhaustive), "exhaustive");
}
