/**
 * @file
 * Unit and property tests of the deterministic RNG layer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

using namespace imc;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next_u64() == b.next_u64();
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1'000; ++i) {
        const double u = rng.uniform(-3.0, 5.5);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.5);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    OnlineStats s;
    for (int i = 0; i < 100'000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias)
{
    Rng rng(3);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100'000; ++i)
        ++counts[rng.uniform_index(10)];
    for (int c : counts)
        EXPECT_NEAR(c, 10'000, 500);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1'000; ++i) {
        const auto v = rng.uniform_int(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all five values hit
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    OnlineStats s;
    for (int i = 0; i < 200'000; ++i)
        s.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalFactorUnitMedianAndPositive)
{
    Rng rng(17);
    std::vector<double> xs;
    for (int i = 0; i < 50'000; ++i) {
        const double f = rng.lognormal_factor(0.3);
        ASSERT_GT(f, 0.0);
        xs.push_back(f);
    }
    EXPECT_NEAR(median(xs), 1.0, 0.02);
}

TEST(Rng, LognormalFactorZeroSigmaIsExactlyOne)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.lognormal_factor(0.0), 1.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 100'000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits, 30'000, 1'000);
}

TEST(Rng, ForkByNameIsIndependentOfParentConsumption)
{
    Rng parent(99);
    Rng child1 = parent.fork("stream");
    parent.next_u64();
    parent.next_u64();
    Rng child2 = parent.fork("stream");
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, ForksWithDifferentNamesDiffer)
{
    Rng parent(99);
    Rng a = parent.fork("a");
    Rng b = parent.fork("b");
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkByIndexDiffers)
{
    Rng parent(99);
    EXPECT_NE(parent.fork(std::uint64_t{0}).next_u64(),
              parent.fork(std::uint64_t{1}).next_u64());
}

TEST(Rng, HashStringStable)
{
    EXPECT_EQ(hash_string("abc"), hash_string("abc"));
    EXPECT_NE(hash_string("abc"), hash_string("abd"));
    EXPECT_NE(hash_string(""), hash_string("a"));
}

TEST(Rng, HashCombineOrderSensitive)
{
    EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// Property sweep: forked streams at many indices never collide on
// their first draws.
class RngForkSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngForkSweep, FirstDrawsDistinctAcrossIndices)
{
    Rng parent(GetParam());
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 500; ++i)
        seen.insert(parent.fork(i).next_u64());
    EXPECT_EQ(seen.size(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngForkSweep,
                         ::testing::Values(1, 42, 1234, 99999,
                                           0xDEADBEEF));
