/**
 * @file
 * Tests of the RunService measurement backend and the determinism
 * contract of everything layered on top of it: parallel and serial
 * execution must produce bit-identical numbers, because every leaf
 * run derives its randomness from its own request content.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "bubble/bubble.hpp"
#include "common/rng.hpp"
#include "core/measure.hpp"
#include "core/profilers.hpp"
#include "core/registry.hpp"
#include "core/scorer.hpp"
#include "workload/catalog.hpp"
#include "workload/run_service.hpp"
#include "workload/runner.hpp"

using namespace imc;
using namespace imc::core;
using namespace imc::workload;

namespace {

RunConfig
fast_cfg()
{
    RunConfig cfg;
    cfg.reps = 1;
    cfg.seed = 77;
    return cfg;
}

std::vector<sim::NodeId>
first_nodes(int n)
{
    std::vector<sim::NodeId> nodes;
    for (int i = 0; i < n; ++i)
        nodes.push_back(i);
    return nodes;
}

/** A small mixed batch of app-time and co-run requests. */
std::vector<RunRequest>
sample_requests(const RunConfig& cfg)
{
    const auto& zeus = find_app("M.zeus");
    const auto& km = find_app("H.KM");
    const auto nodes = first_nodes(4);
    std::vector<RunRequest> reqs;
    reqs.push_back(solo_time_request(zeus, nodes, cfg));
    for (int p = 1; p <= 4; ++p) {
        std::vector<ExtraTenant> extra;
        for (int n = 0; n < p; ++n)
            extra.push_back(
                ExtraTenant{n, bubble::bubble_demand(p)});
        reqs.push_back(app_time_request(zeus, nodes, extra, cfg));
    }
    reqs.push_back(corun_time_request(zeus, nodes,
                                      {Deployment{km, nodes}}, cfg));
    return reqs;
}

void
expect_same_matrix(const SensitivityMatrix& a,
                   const SensitivityMatrix& b)
{
    ASSERT_EQ(a.pressure_levels(), b.pressure_levels());
    ASSERT_EQ(a.hosts(), b.hosts());
    for (int p = 1; p <= a.pressure_levels(); ++p) {
        for (int j = 0; j <= a.hosts(); ++j)
            EXPECT_EQ(a.at(p, j), b.at(p, j))
                << "p=" << p << " j=" << j; // bit-identical, not near
    }
}

} // namespace

TEST(CanonicalKey, IdenticalRequestsShareAKey)
{
    const auto cfg = fast_cfg();
    const auto reqs = sample_requests(cfg);
    for (const auto& req : reqs)
        EXPECT_EQ(canonical_key(req), canonical_key(req));
}

TEST(CanonicalKey, DistinguishesEveryInput)
{
    const auto cfg = fast_cfg();
    const auto& zeus = find_app("M.zeus");
    const auto& km = find_app("H.KM");
    const auto nodes = first_nodes(4);
    const auto base = solo_time_request(zeus, nodes, cfg);

    auto other_app = solo_time_request(km, nodes, cfg);
    EXPECT_NE(canonical_key(base), canonical_key(other_app));

    auto other_nodes = solo_time_request(zeus, first_nodes(3), cfg);
    EXPECT_NE(canonical_key(base), canonical_key(other_nodes));

    auto salted = cfg;
    salted.salt = 1;
    EXPECT_NE(canonical_key(base),
              canonical_key(solo_time_request(zeus, nodes, salted)));

    auto reseeded = cfg;
    reseeded.seed = cfg.seed + 1;
    EXPECT_NE(canonical_key(base),
              canonical_key(solo_time_request(zeus, nodes, reseeded)));

    auto more_reps = cfg;
    more_reps.reps = cfg.reps + 1;
    EXPECT_NE(canonical_key(base),
              canonical_key(solo_time_request(zeus, nodes, more_reps)));

    auto with_extra = base;
    with_extra.extra.push_back(
        ExtraTenant{0, bubble::bubble_demand(2.0)});
    EXPECT_NE(canonical_key(base), canonical_key(with_extra));

    auto corun = corun_time_request(zeus, nodes,
                                    {Deployment{km, nodes}}, cfg);
    EXPECT_NE(canonical_key(base), canonical_key(corun));
}

TEST(RunService, MatchesDirectExecutionAtAnyThreadCount)
{
    const auto cfg = fast_cfg();
    const auto reqs = sample_requests(cfg);
    std::vector<double> direct;
    for (const auto& req : reqs)
        direct.push_back(execute_request(req));

    for (int threads : {1, 4}) {
        RunService service(threads);
        const auto got = service.run_all(reqs);
        ASSERT_EQ(got.size(), direct.size()) << threads;
        for (std::size_t i = 0; i < direct.size(); ++i)
            EXPECT_EQ(got[i], direct[i])
                << "threads=" << threads << " i=" << i;
    }
}

TEST(RunService, RepeatedRequestExecutesOnce)
{
    const auto cfg = fast_cfg();
    const auto req = sample_requests(cfg).front();
    RunService service(4);
    const double first = service.run(req);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(service.run(req), first);
    const auto stats = service.stats();
    EXPECT_EQ(stats.submitted, 10u);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.cache_hits, 9u);
}

TEST(RunService, RunAllDeduplicatesWithinABatch)
{
    const auto cfg = fast_cfg();
    const auto req = sample_requests(cfg).front();
    RunService service(2);
    const std::vector<RunRequest> batch{req, req, req};
    const auto got = service.run_all(batch);
    EXPECT_EQ(got[0], got[1]);
    EXPECT_EQ(got[1], got[2]);
    EXPECT_EQ(service.stats().executed, 1u);
    EXPECT_EQ(service.stats().cache_hits, 2u);
}

TEST(RunService, ZeroThreadsMeansHardwareConcurrency)
{
    RunService service(0);
    EXPECT_GE(service.threads(), 1);
}

TEST(RunService, HandleReadyAndGetAgree)
{
    const auto cfg = fast_cfg();
    const auto req = sample_requests(cfg).front();
    RunService service(1); // inline: ready immediately after submit
    auto handle = service.submit(req);
    EXPECT_TRUE(handle.ready());
    EXPECT_EQ(handle.get(), execute_request(req));
}

TEST(RunService, ConcurrentSubmittersSeeConsistentValues)
{
    const auto cfg = fast_cfg();
    const auto reqs = sample_requests(cfg);
    std::vector<double> direct;
    for (const auto& req : reqs)
        direct.push_back(execute_request(req));

    RunService service(4);
    constexpr int kSubmitters = 8;
    constexpr int kRounds = 25;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                // Every submitter walks the batch at its own phase.
                const std::size_t i =
                    static_cast<std::size_t>(t + round) % reqs.size();
                if (service.run(reqs[i]) != direct[i])
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto& t : submitters)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);

    const auto stats = service.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<std::uint64_t>(kSubmitters * kRounds));
    EXPECT_EQ(stats.executed, reqs.size());
    EXPECT_EQ(stats.submitted, stats.executed + stats.cache_hits);
}

TEST(CountingMeasureThreads, ConcurrentCallsCountEachSettingOnce)
{
    std::atomic<int> inner_calls{0};
    CountingMeasure measure{MeasureFn([&](int p, int j) {
        inner_calls.fetch_add(1);
        return 1.0 + 0.1 * p + 0.01 * j;
    })};
    constexpr int kThreads = 8;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int p = 1; p <= 4; ++p) {
                EXPECT_EQ(measure(p, 0), 1.0); // free by definition
                for (int j = 1; j <= 4; ++j)
                    EXPECT_EQ(measure(p, j), 1.0 + 0.1 * p + 0.01 * j);
            }
        });
    }
    for (auto& t : pool)
        t.join();
    // 4 pressures x 4 settings with j >= 1; j == 0 is free.
    EXPECT_EQ(measure.measured(), 16);
    // Concurrent first callers may race to compute the same setting
    // (both values are identical); the count must still be exact.
    EXPECT_GE(inner_calls.load(), 16);
}

TEST(CountingMeasureThreads, PrefetchDoesNotAffectCostAccounting)
{
    std::vector<CountingMeasure::Setting> prefetched;
    CountingMeasure measure{
        MeasureFn([](int p, int j) { return 1.0 + 0.1 * p * j; }),
        [&](const std::vector<CountingMeasure::Setting>& s) {
            prefetched.insert(prefetched.end(), s.begin(), s.end());
        }};
    measure.prefetch({{1, 0}, {1, 1}, {2, 2}});
    EXPECT_EQ(measure.measured(), 0); // prefetch is only a hint
    // The free j == 0 setting must not reach the hook.
    ASSERT_EQ(prefetched.size(), 2u);
    EXPECT_EQ(prefetched[0], (CountingMeasure::Setting{1, 1}));

    EXPECT_EQ(measure(1, 1), 1.0 + 0.1 * 1 * 1);
    EXPECT_EQ(measure.measured(), 1);
    // Already-measured settings are filtered from later prefetches.
    measure.prefetch({{1, 1}, {3, 1}});
    ASSERT_EQ(prefetched.size(), 3u);
    EXPECT_EQ(prefetched[2], (CountingMeasure::Setting{3, 1}));
}

TEST(ProfilerEquivalence, AllAlgorithmsBitIdenticalSerialVsParallel)
{
    const auto cfg = fast_cfg();
    const auto& app = find_app("M.zeus");
    const auto nodes = first_nodes(4);
    ProfileOptions opts;
    opts.hosts = 4;

    for (const auto algorithm :
         {ProfileAlgorithm::Exhaustive, ProfileAlgorithm::BinaryBrute,
          ProfileAlgorithm::BinaryOptimized,
          ProfileAlgorithm::Random30, ProfileAlgorithm::Random50}) {
        const std::uint64_t seed = hash_combine(
            cfg.seed, hash_string(to_string(algorithm)));

        // Reference: the plain serial measurement path.
        CountingMeasure serial(
            make_cluster_measure(app, nodes, cfg, opts.grid));
        const auto want = run_profiler(algorithm, serial, opts, seed);

        for (int threads : {1, 4}) {
            RunService service(threads);
            CountingMeasure measure(
                make_cluster_measure(app, nodes, cfg, opts.grid,
                                     service),
                make_cluster_prefetch(app, nodes, cfg, opts.grid,
                                      service));
            ProfileOptions popts = opts;
            popts.row_tasks = threads;
            const auto got =
                run_profiler(algorithm, measure, popts, seed);
            SCOPED_TRACE(to_string(algorithm) + " threads=" +
                         std::to_string(threads));
            expect_same_matrix(got.matrix, want.matrix);
            EXPECT_EQ(got.measured, want.measured);
        }
    }
}

TEST(ScorerEquivalence, CalibrationAndScoresBitIdentical)
{
    const auto cfg = fast_cfg();
    const auto nodes = first_nodes(4);
    const BubbleScorer direct(cfg);
    for (int threads : {1, 4}) {
        RunService service(threads);
        const BubbleScorer scored(cfg, &service);
        ASSERT_EQ(scored.calibration().size(),
                  direct.calibration().size());
        for (std::size_t i = 0; i < direct.calibration().size(); ++i)
            EXPECT_EQ(scored.calibration()[i],
                      direct.calibration()[i]);
        for (const char* abbrev : {"M.zeus", "C.libq", "H.KM"}) {
            const auto& app = find_app(abbrev);
            EXPECT_EQ(scored.score(app, nodes),
                      direct.score(app, nodes))
                << abbrev << " threads=" << threads;
        }
    }
}

TEST(RegistryEquivalence, ModelsBitIdenticalWithAndWithoutService)
{
    const auto cfg = fast_cfg();
    ModelBuildOptions opts;
    opts.policy_samples = 8;

    ModelRegistry direct(cfg, opts);
    const auto& want = direct.model(find_app("M.zeus"), 4);

    for (int threads : {1, 4}) {
        RunService service(threads);
        ModelRegistry registry(cfg, opts, &service);
        const auto& got = registry.model(find_app("M.zeus"), 4);
        SCOPED_TRACE(threads);
        expect_same_matrix(got.model.matrix(), want.model.matrix());
        EXPECT_EQ(got.model.bubble_score(), want.model.bubble_score());
        EXPECT_EQ(got.model.policy(), want.model.policy());
        EXPECT_EQ(got.profile_cost, want.profile_cost);
    }
}

TEST(RegistryEquivalence, PrefetchBuildsTheSameModelsAsSerialCalls)
{
    const auto cfg = fast_cfg();
    ModelBuildOptions opts;
    opts.policy_samples = 6;
    const std::vector<AppSpec> apps{find_app("M.zeus"),
                                    find_app("H.KM"),
                                    find_app("C.libq")};

    ModelRegistry direct(cfg, opts);
    RunService service(4);
    ModelRegistry registry(cfg, opts, &service);
    registry.prefetch(apps, 4);

    for (const auto& app : apps) {
        const auto& want = direct.model(app, 4);
        const auto& got = registry.model(app, 4);
        SCOPED_TRACE(app.abbrev);
        expect_same_matrix(got.model.matrix(), want.model.matrix());
        EXPECT_EQ(got.model.bubble_score(), want.model.bubble_score());
        EXPECT_EQ(got.model.policy(), want.model.policy());
    }
}

TEST(ModelDiskCache, RoundTripsAcrossRegistries)
{
    const auto cfg = fast_cfg();
    ModelBuildOptions opts;
    opts.policy_samples = 8;
    opts.model_cache_dir =
        (std::filesystem::path(testing::TempDir()) /
         "imc_model_cache_roundtrip")
            .string();
    std::filesystem::remove_all(opts.model_cache_dir);

    ModelRegistry first(cfg, opts);
    const auto& built = first.model(find_app("M.zeus"), 4);
    EXPECT_FALSE(built.from_disk_cache);
    EXPECT_FALSE(std::filesystem::is_empty(opts.model_cache_dir));

    ModelRegistry second(cfg, opts);
    const auto& reloaded = second.model(find_app("M.zeus"), 4);
    EXPECT_TRUE(reloaded.from_disk_cache);
    expect_same_matrix(reloaded.model.matrix(), built.model.matrix());
    EXPECT_EQ(reloaded.model.bubble_score(),
              built.model.bubble_score());
    EXPECT_EQ(reloaded.model.policy(), built.model.policy());
    // Loaded models carry no profiling-cost bookkeeping.
    EXPECT_EQ(reloaded.profile_cost, 0.0);
    EXPECT_TRUE(reloaded.policy_fits.empty());

    std::filesystem::remove_all(opts.model_cache_dir);
}

TEST(ModelDiskCache, DifferentConfigurationsDoNotShareEntries)
{
    const auto cfg = fast_cfg();
    ModelBuildOptions opts;
    opts.policy_samples = 8;
    opts.model_cache_dir =
        (std::filesystem::path(testing::TempDir()) /
         "imc_model_cache_config")
            .string();
    std::filesystem::remove_all(opts.model_cache_dir);

    ModelRegistry first(cfg, opts);
    first.model(find_app("M.zeus"), 4);

    // A different seed must profile fresh, not reuse the cached file.
    auto other_cfg = cfg;
    other_cfg.seed = cfg.seed + 1;
    ModelRegistry second(other_cfg, opts);
    EXPECT_FALSE(second.model(find_app("M.zeus"), 4).from_disk_cache);

    std::filesystem::remove_all(opts.model_cache_dir);
}
