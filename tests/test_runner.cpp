/**
 * @file
 * Tests of the experiment runner: solo/bubble/co-run measurements.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/catalog.hpp"
#include "workload/runner.hpp"

using namespace imc;
using namespace imc::workload;

namespace {

RunConfig
fast_cfg()
{
    RunConfig cfg;
    cfg.reps = 2;
    cfg.seed = 77;
    return cfg;
}

AppSpec
short_app(const std::string& abbrev)
{
    AppSpec s = find_app(abbrev);
    if (s.kind == AppKind::Bsp) {
        s.bsp.iterations = 10;
    } else if (s.kind == AppKind::TaskPool) {
        s.pool.stages = std::min(s.pool.stages, 3);
    } else {
        s.batch.total_work = 10.0;
        s.batch.segments = 10;
    }
    return s;
}

} // namespace

TEST(Runner, AllNodesListsWholeCluster)
{
    const auto nodes = all_nodes(sim::ClusterSpec::private8());
    ASSERT_EQ(nodes.size(), 8u);
    EXPECT_EQ(nodes.front(), 0);
    EXPECT_EQ(nodes.back(), 7);
}

TEST(Runner, BubbleTenantsSkipZeroPressure)
{
    const auto tenants = bubble_tenants({0.0, 3.0, 0.0, 5.0});
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].node, 1);
    EXPECT_EQ(tenants[1].node, 3);
    EXPECT_GT(tenants[1].demand.gen_mb, tenants[0].demand.gen_mb);
}

TEST(Runner, BubbleTenantsRejectNegative)
{
    EXPECT_THROW(bubble_tenants({-1.0}), ConfigError);
}

TEST(Runner, SoloTimeDeterministicAndPositive)
{
    const auto cfg = fast_cfg();
    const auto app = short_app("M.milc");
    const auto nodes = all_nodes(cfg.cluster);
    const double t1 = run_solo_time(app, nodes, cfg);
    const double t2 = run_solo_time(app, nodes, cfg);
    EXPECT_GT(t1, 0.0);
    EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Runner, DifferentSaltsGiveDifferentNoise)
{
    auto cfg = fast_cfg();
    const auto app = short_app("M.milc");
    const auto nodes = all_nodes(cfg.cluster);
    const double t1 = run_solo_time(app, nodes, cfg);
    cfg.salt = 999;
    const double t2 = run_solo_time(app, nodes, cfg);
    EXPECT_NE(t1, t2);
    EXPECT_NEAR(t1 / t2, 1.0, 0.05); // same distribution though
}

TEST(Runner, BubblesSlowTheRun)
{
    const auto cfg = fast_cfg();
    const auto app = short_app("N.mg");
    const auto nodes = all_nodes(cfg.cluster);
    const double norm = run_with_bubbles_norm(
        app, nodes, {8, 8, 8, 8, 8, 8, 8, 8}, cfg);
    EXPECT_GT(norm, 1.3);
}

TEST(Runner, NoBubblesIsUnity)
{
    const auto cfg = fast_cfg();
    const auto app = short_app("M.zeus");
    const auto nodes = all_nodes(cfg.cluster);
    const double norm = run_with_bubbles_norm(
        app, nodes, {0, 0, 0, 0, 0, 0, 0, 0}, cfg);
    EXPECT_DOUBLE_EQ(norm, 1.0);
}

TEST(Runner, MorePressureMeansMoreSlowdown)
{
    const auto cfg = fast_cfg();
    const auto app = short_app("N.cg");
    const auto nodes = all_nodes(cfg.cluster);
    const double lo = run_with_bubbles_norm(
        app, nodes, {2, 2, 2, 2, 2, 2, 2, 2}, cfg);
    const double hi = run_with_bubbles_norm(
        app, nodes, {8, 8, 8, 8, 8, 8, 8, 8}, cfg);
    EXPECT_GT(hi, lo);
}

TEST(Runner, CorunSlowsTarget)
{
    const auto cfg = fast_cfg();
    const auto target = short_app("M.milc");
    const auto nodes = all_nodes(cfg.cluster);
    const double solo = run_solo_time(target, nodes, cfg);
    const double corun = run_corun_time(
        target, nodes, {Deployment{short_app("C.mcf"), nodes}}, cfg);
    EXPECT_GT(corun, solo * 1.02);
}

TEST(Runner, CorunWithGentleAppBarelyHurts)
{
    const auto cfg = fast_cfg();
    const auto target = short_app("H.KM");
    const auto nodes = all_nodes(cfg.cluster);
    const double solo = run_solo_time(target, nodes, cfg);
    const double corun = run_corun_time(
        target, nodes, {Deployment{short_app("S.WC"), nodes}}, cfg);
    EXPECT_LT(corun / solo, 1.15);
}

TEST(Runner, RestartingAppKeepsRelaunching)
{
    sim::Simulation sim(sim::ClusterSpec::private8());
    AppSpec spec = short_app("C.gcc");
    LaunchOptions opts;
    opts.nodes = {0};
    opts.procs_per_node = 1;
    opts.rng = Rng(3);
    RestartingApp restarting(sim, spec, std::move(opts));
    // Run for a while, then stop it.
    for (int i = 0; i < 100 && sim.step(); ++i) {
    }
    restarting.stop();
    sim.run();
    EXPECT_GE(restarting.completions(), 1);
    EXPECT_GT(restarting.first_finish_time(), 0.0);
}

TEST(Runner, Dom0AdjustmentScalesWithOverlap)
{
    Rng rng(5);
    const std::vector<AppSpec> mixed{find_app("M.Gems"),
                                     find_app("H.KM")};
    const auto none = corun_adjustments(mixed, {0.0, 0.0}, rng);
    EXPECT_EQ(none[0].extra_noise_sigma, 0.0);
    EXPECT_EQ(none[0].demand_scale, 1.0);

    const auto half = corun_adjustments(mixed, {0.5, 0.0}, rng);
    const auto full = corun_adjustments(mixed, {1.0, 0.0}, rng);
    EXPECT_GT(half[0].extra_noise_sigma, 0.0);
    EXPECT_GT(full[0].extra_noise_sigma, half[0].extra_noise_sigma);
    EXPECT_NE(full[0].demand_scale, 1.0);
    // The non-sensitive app is unaffected even at full overlap.
    const auto other = corun_adjustments(mixed, {0.0, 1.0}, rng);
    EXPECT_EQ(other[1].extra_noise_sigma, 0.0);
}

TEST(Runner, FluctuatingOverlapsComputed)
{
    const std::vector<Deployment> deployments{
        {find_app("M.Gems"), {0, 1, 2, 3}},
        {find_app("H.KM"), {2, 3, 4, 5}},   // fluctuating
        {find_app("C.gcc"), {0, 1, 6, 7}},  // not fluctuating
    };
    const auto overlaps = fluctuating_overlaps(deployments);
    EXPECT_DOUBLE_EQ(overlaps[0], 0.5); // nodes 2,3 of 4
    EXPECT_DOUBLE_EQ(overlaps[1], 0.0); // no other fluctuating app
    EXPECT_DOUBLE_EQ(overlaps[2], 0.0);
}

TEST(Runner, Ec2BackgroundRaisesVariance)
{
    RunConfig priv = fast_cfg();
    priv.reps = 1;
    RunConfig ec2 = priv;
    ec2.cluster = sim::ClusterSpec::ec2_32();

    AppSpec app = short_app("M.milc");
    const auto priv_nodes = all_nodes(priv.cluster);
    const auto ec2_nodes = all_nodes(ec2.cluster);

    // Sample several salts; EC2 solo runtimes scatter more.
    auto spread = [&](const RunConfig& base,
                      const std::vector<sim::NodeId>& nodes) {
        double lo = 1e18;
        double hi = 0.0;
        for (std::uint64_t s = 0; s < 6; ++s) {
            RunConfig cfg = base;
            cfg.salt = s;
            const double t = run_solo_time(app, nodes, cfg);
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
        return hi / lo;
    };
    EXPECT_GT(spread(ec2, ec2_nodes), spread(priv, priv_nodes));
}
