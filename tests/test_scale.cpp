/**
 * @file
 * The scale/equivalence suite locking the rearchitected engine
 * (DESIGN.md §7) to the seed architecture:
 *
 *  - mode equivalence: the scaled engine (calendar queue, SoA state,
 *    node-local re-solves) must produce a byte-identical per-event
 *    trace — time, solve and reschedule counters at every step,
 *    printed as hexfloat — to EngineMode::kSeed on paper-shaped
 *    scenarios (fig03: an app under bubble tenants; fig08: a co-run
 *    against a restarting co-runner);
 *  - dirty-set property: after any incremental history, a full
 *    refresh_all_nodes() re-solve changes no tenant's slowdown;
 *  - batching property: a mutation burst inside a resolve batch ends
 *    in exactly the state eager per-mutation re-solves produce, with
 *    fewer solves;
 *  - 1k-node smoke: a seeded 1000-node churn run completes with no
 *    lost work units and conserved per-node pressure totals.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "workload/app.hpp"
#include "workload/catalog.hpp"
#include "workload/runner.hpp"

using namespace imc;
using namespace imc::sim;
using namespace imc::workload;

namespace {

/**
 * Step a simulation to completion, appending one line per event:
 * index, now() as hexfloat (exact bits), and the engine's solve /
 * reschedule / compute counters. Two engines with identical traces
 * executed the same events at the same times with the same amount of
 * contention work — the equivalence the scaled mode promises.
 */
std::string
trace_to_completion(Simulation& sim)
{
    std::ostringstream os;
    os << std::hexfloat;
    std::uint64_t i = 0;
    while (sim.step()) {
        const SimStats& s = sim.stats();
        os << i++ << ' ' << sim.now() << ' ' << s.contention_solves
           << ' ' << s.proc_reschedules << ' ' << s.computes << '\n';
    }
    return os.str();
}

TenantDemand
jittered_demand(Rng& rng)
{
    TenantDemand d;
    d.gen_mb = rng.uniform(0.5, 12.0);
    d.need_mb = rng.uniform(0.5, 16.0);
    d.bw_gbps = rng.uniform(0.2, 6.0);
    d.mem_intensity = rng.uniform(0.1, 0.9);
    d.cache_gamma = rng.uniform(0.3, 1.2);
    return d;
}

/** fig03 shape: one app on 4 nodes under fixed bubble pressure. */
std::string
trace_fig03_shape(EngineMode mode)
{
    Simulation sim(ClusterSpec::private8(), SimOptions{mode});
    // Bubbles on half the app's nodes, as a fig03 sensitivity point.
    const std::vector<double> pressures{0.8, 0.0, 1.6, 0.0};
    for (const ExtraTenant& b : bubble_tenants(pressures))
        sim.add_tenant(b.node, b.demand);

    LaunchOptions opts;
    opts.nodes = {0, 1, 2, 3};
    opts.procs_per_node = 4;
    opts.rng = Rng(909);
    const auto app = launch(sim, find_app("M.milc"), opts);
    std::string trace = trace_to_completion(sim);
    EXPECT_TRUE(app->done());
    return trace;
}

/** fig08 shape: a target co-running with a restarting co-runner. */
std::string
trace_fig08_shape(EngineMode mode)
{
    Simulation sim(ClusterSpec::private8(), SimOptions{mode});

    LaunchOptions co_opts;
    co_opts.nodes = {0, 1, 2, 3};
    co_opts.procs_per_node = 4;
    co_opts.rng = Rng(707);
    RestartingApp corunner(sim, find_app("C.libq"), co_opts);

    LaunchOptions opts;
    opts.nodes = {0, 1, 2, 3};
    opts.procs_per_node = 4;
    opts.rng = Rng(808);
    opts.on_complete = [&corunner] { corunner.stop(); };
    const auto target = launch(sim, find_app("M.Gems"), opts);

    std::string trace = trace_to_completion(sim);
    EXPECT_TRUE(target->done());
    EXPECT_GE(corunner.completions(), 0);
    return trace;
}

} // namespace

TEST(ScaleEquivalence, Fig03ShapeTraceIsByteIdentical)
{
    const std::string seed_trace =
        trace_fig03_shape(EngineMode::kSeed);
    const std::string scaled_trace =
        trace_fig03_shape(EngineMode::kScaled);
    ASSERT_FALSE(seed_trace.empty());
    EXPECT_EQ(seed_trace, scaled_trace);
}

TEST(ScaleEquivalence, Fig08ShapeTraceIsByteIdentical)
{
    const std::string seed_trace =
        trace_fig08_shape(EngineMode::kSeed);
    const std::string scaled_trace =
        trace_fig08_shape(EngineMode::kScaled);
    ASSERT_FALSE(seed_trace.empty());
    EXPECT_EQ(seed_trace, scaled_trace);
}

TEST(ScaleEquivalence, CrashRecoveryTraceIsByteIdentical)
{
    // A mid-run crash exercises crash_node's settle/cancel path in
    // both modes; survivors must then finish identically.
    auto traced = [](EngineMode mode) {
        Simulation sim(ClusterSpec::private8(), SimOptions{mode});
        LaunchOptions opts;
        opts.nodes = {0, 1, 2, 3, 4, 5};
        opts.procs_per_node = 2;
        opts.rng = Rng(1234);
        const auto app = launch(sim, find_app("S.PR"), opts);
        sim.schedule(0.4, [&sim] { sim.crash_node(2); });
        std::string trace = trace_to_completion(sim);
        EXPECT_TRUE(sim.node_crashed(2));
        EXPECT_EQ(sim.stats().node_crashes, 1u);
        return trace;
    };
    const std::string seed_trace = traced(EngineMode::kSeed);
    const std::string scaled_trace = traced(EngineMode::kScaled);
    ASSERT_FALSE(seed_trace.empty());
    EXPECT_EQ(seed_trace, scaled_trace);
}

TEST(ScaleProperty, FullRefreshIsNoOpAfterIncrementalHistory)
{
    // Random add/remove/set_demand history, incrementally re-solved;
    // a from-scratch re-solve of every node must then change nothing
    // (the dirty-set invariant: incremental == full).
    Simulation sim(ClusterSpec::scaled(32));
    Rng rng(20260807);
    std::vector<TenantId> live;
    for (int step = 0; step < 600; ++step) {
        const auto kind = rng.uniform_index(10);
        if (kind < 5 || live.size() < 8) {
            const auto node = static_cast<NodeId>(
                rng.uniform_index(32));
            live.push_back(
                sim.add_tenant(node, jittered_demand(rng)));
        } else if (kind < 8) {
            const auto pick = rng.uniform_index(live.size());
            sim.set_demand(live[pick], jittered_demand(rng));
        } else {
            const auto pick = rng.uniform_index(live.size());
            sim.remove_tenant(live[pick]);
            live[pick] = live.back();
            live.pop_back();
        }
    }

    std::vector<double> before;
    for (const TenantId t : live)
        before.push_back(sim.tenant_slowdown(t));

    sim.refresh_all_nodes();

    for (std::size_t i = 0; i < live.size(); ++i)
        EXPECT_EQ(sim.tenant_slowdown(live[i]), before[i])
            << "tenant " << live[i]
            << " drifted under a full re-solve";
}

TEST(ScaleProperty, BatchedResolveMatchesEagerExactly)
{
    // The same mutation burst applied to two simulations — one with
    // eager per-mutation re-solves, one inside a resolve batch — must
    // end in the identical per-tenant state with fewer solves.
    constexpr int kNodes = 16;
    constexpr int kMutations = 400;
    Simulation eager(ClusterSpec::scaled(kNodes));
    Simulation batched(ClusterSpec::scaled(kNodes));

    auto mutate = [](Simulation& sim) {
        Rng rng(555);
        std::vector<TenantId> live;
        for (int step = 0; step < kMutations; ++step) {
            const auto kind = rng.uniform_index(10);
            if (kind < 6 || live.size() < 4) {
                const auto node = static_cast<NodeId>(
                    rng.uniform_index(kNodes));
                live.push_back(
                    sim.add_tenant(node, jittered_demand(rng)));
            } else {
                const auto pick = rng.uniform_index(live.size());
                sim.set_demand(live[pick], jittered_demand(rng));
            }
        }
        return live;
    };

    const auto eager_live = mutate(eager);
    std::vector<TenantId> batched_live;
    {
        ResolveBatch batch(batched);
        batched_live = mutate(batched);
        // Inside the batch nothing has been re-solved yet.
        EXPECT_EQ(batched.stats().contention_solves, 0u);
    }

    ASSERT_EQ(eager_live.size(), batched_live.size());
    for (std::size_t i = 0; i < eager_live.size(); ++i)
        EXPECT_EQ(batched.tenant_slowdown(batched_live[i]),
                  eager.tenant_slowdown(eager_live[i]))
            << "tenant " << i << " diverged under batching";

    // The batch coalesced the burst into at most one solve per node.
    EXPECT_GT(batched.stats().batched_resolves, 0u);
    EXPECT_LE(batched.stats().contention_solves,
              static_cast<std::uint64_t>(kNodes));
    EXPECT_GT(eager.stats().contention_solves,
              batched.stats().contention_solves);
}

TEST(ScaleProperty, ResolveBatchesNest)
{
    Simulation sim(ClusterSpec::scaled(4));
    sim.begin_resolve_batch();
    Rng rng(99);
    const TenantId a = sim.add_tenant(0, jittered_demand(rng));
    sim.begin_resolve_batch();
    const TenantId b = sim.add_tenant(0, jittered_demand(rng));
    sim.end_resolve_batch();
    // Inner close must not re-solve: the outer batch is still open.
    EXPECT_EQ(sim.stats().contention_solves, 0u);
    sim.end_resolve_batch();
    EXPECT_EQ(sim.stats().contention_solves, 1u);

    // Both tenants were solved together.
    Simulation oracle(ClusterSpec::scaled(4));
    Rng rng2(99);
    const TenantId oa = oracle.add_tenant(0, jittered_demand(rng2));
    const TenantId ob = oracle.add_tenant(0, jittered_demand(rng2));
    EXPECT_EQ(sim.tenant_slowdown(a), oracle.tenant_slowdown(oa));
    EXPECT_EQ(sim.tenant_slowdown(b), oracle.tenant_slowdown(ob));
}

TEST(ScaleSmoke, ThousandNodeChurnRunConservesWorkAndPressure)
{
    // A seeded 1000-node churn run, tier-1 sized (~35k events): every
    // tenant runs 5 compute segments with 30% demand churn. At the
    // end no work unit may be lost and every node's pressure total
    // (sum of live tenant demands) must match the driver's books.
    constexpr int kNodes = 1000;
    constexpr int kTenantsPerNode = 7;
    constexpr int kSegments = 5;
    Simulation sim(ClusterSpec::scaled(kNodes));

    struct Tenant {
        TenantId id;
        ProcId proc;
        int left;
        Rng rng;
        double gen_mb; // the pressure we believe this tenant exerts
    };
    std::vector<Tenant> tenants;
    int completed_chains = 0;

    {
        // Registration is a mutation burst per node: batch it.
        ResolveBatch batch(sim);
        for (int node = 0; node < kNodes; ++node) {
            for (int k = 0; k < kTenantsPerNode; ++k) {
                Tenant t;
                t.rng = Rng(0xABCDEF ^
                            (tenants.size() * 2654435761u));
                const TenantDemand d = jittered_demand(t.rng);
                t.id = sim.add_tenant(node, d);
                t.proc = sim.add_proc(t.id);
                t.left = kSegments;
                t.gen_mb = d.gen_mb;
                tenants.push_back(std::move(t));
            }
        }
    }

    std::function<void(std::size_t)> start_segment =
        [&](std::size_t i) {
            Tenant& t = tenants[i];
            sim.compute(t.proc, t.rng.uniform(0.5, 1.5), [&, i] {
                Tenant& self = tenants[i];
                if (--self.left <= 0) {
                    ++completed_chains;
                    return;
                }
                if (self.rng.uniform() < 0.3) {
                    const TenantDemand d = jittered_demand(self.rng);
                    sim.set_demand(self.id, d);
                    self.gen_mb = d.gen_mb;
                }
                start_segment(i);
            });
        };
    for (std::size_t i = 0; i < tenants.size(); ++i)
        start_segment(i);

    sim.run();

    // No lost units: every chain ran all its segments.
    EXPECT_EQ(completed_chains, kNodes * kTenantsPerNode);
    EXPECT_EQ(sim.stats().computes,
              static_cast<std::uint64_t>(kNodes * kTenantsPerNode *
                                         kSegments));

    // Conserved pressure totals: per node, the engine's live demand
    // sum equals the driver's books; slowdowns are sane (>= 1).
    std::vector<double> expected(kNodes, 0.0);
    for (const Tenant& t : tenants)
        expected[static_cast<std::size_t>(sim.node_of(t.id))] +=
            t.gen_mb;
    std::vector<double> actual(kNodes, 0.0);
    for (const Tenant& t : tenants) {
        actual[static_cast<std::size_t>(sim.node_of(t.id))] +=
            sim.tenant_demand(t.id).gen_mb;
        EXPECT_FALSE(sim.proc_busy(t.proc));
        EXPECT_GE(sim.tenant_slowdown(t.id), 1.0);
    }
    for (int node = 0; node < kNodes; ++node)
        EXPECT_EQ(actual[static_cast<std::size_t>(node)],
                  expected[static_cast<std::size_t>(node)])
            << "node " << node << " pressure books diverged";
    EXPECT_EQ(sim.tenants_on(0), kTenantsPerNode);
}
