/**
 * @file
 * The event-driven incremental scheduler suite (DESIGN.md §8).
 *
 * The load-bearing property: after EVERY event of a randomized trace,
 * the core's incrementally maintained state must equal a from-scratch
 * rebuild — predicted times bit-identical to a fresh evaluator's
 * predict() over the same placement, bookkeeping (loads, free slots,
 * id maps) consistent with a recount, and the placement valid, within
 * capacity, and never touching a dead node. Plus: strict trace
 * parsing with an exact serialize round trip, SLO-aware admission and
 * eviction semantics, replay determinism, execute-mode attach/detach
 * against the simulator, and (FaultSched.*, picked up by the chaos
 * and TSan CI jobs) deterministic sched.admit/sched.evict injection
 * with byte-identical replays across RunService thread counts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "placement/evaluator.hpp"
#include "sched/replay.hpp"
#include "sched/scheduler.hpp"
#include "sched/trace.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"
#include "workload/run_service.hpp"
#include "workload/runner.hpp"

using namespace imc;
using namespace imc::core;
using namespace imc::placement;
using namespace imc::sched;
using namespace imc::workload;

namespace {

RunConfig
fast_cfg()
{
    RunConfig cfg;
    cfg.reps = 1;
    cfg.seed = 91;
    return cfg;
}

ModelBuildOptions
fast_opts()
{
    ModelBuildOptions opts;
    opts.policy_samples = 6;
    return opts;
}

ModelRegistry&
shared_registry()
{
    static ModelRegistry registry(fast_cfg(), fast_opts());
    return registry;
}

/** Small archetype pool so tests profile few models. */
std::vector<AppSpec>
small_pool()
{
    return {find_app("C.gcc"), find_app("M.lmps"), find_app("H.KM")};
}

/** Disarm on scope exit so no test leaks an armed schedule. */
struct ArmGuard {
    ArmGuard(std::uint64_t seed, const std::string& spec)
    {
        fault::arm(seed, spec);
    }
    ~ArmGuard() { fault::disarm(); }
    ArmGuard(const ArmGuard&) = delete;
    ArmGuard& operator=(const ArmGuard&) = delete;
};

Trace
parse_str(const std::string& text)
{
    std::istringstream is(text);
    return parse_trace(is);
}

void
apply_event(SchedulerCore& core, const TraceEvent& e)
{
    switch (e.kind) {
      case EventKind::kArrive:
        core.arrive(e.id, find_app(e.app), e.units, e.slo);
        break;
      case EventKind::kDepart:
        core.depart(e.id);
        break;
      case EventKind::kCrash:
        core.crash(e.node);
        break;
      case EventKind::kJoin:
        core.join(e.node);
        break;
    }
}

/**
 * Recount everything the core maintains incrementally and compare:
 * placement validity, per-node load within slots and off dead nodes,
 * load_of/free_slots bookkeeping, and the id<->index maps.
 */
void
expect_invariants(const SchedulerCore& core, int num_nodes, int slots)
{
    const auto& p = core.placement();
    ASSERT_TRUE(p.valid());
    std::vector<int> load(static_cast<std::size_t>(num_nodes), 0);
    for (int i = 0; i < p.num_instances(); ++i) {
        const int units =
            p.instances()[static_cast<std::size_t>(i)].units;
        for (int u = 0; u < units; ++u) {
            const sim::NodeId n = p.node_of(i, u);
            ASSERT_GE(n, 0);
            ASSERT_LT(n, num_nodes);
            EXPECT_TRUE(core.node_alive(n))
                << "unit on dead node " << n;
            ++load[static_cast<std::size_t>(n)];
        }
    }
    int free = 0;
    for (int n = 0; n < num_nodes; ++n) {
        EXPECT_LE(load[static_cast<std::size_t>(n)], slots)
            << "node " << n << " over capacity";
        EXPECT_EQ(core.load_of(n), load[static_cast<std::size_t>(n)]);
        if (core.node_alive(n))
            free += slots - load[static_cast<std::size_t>(n)];
    }
    EXPECT_EQ(core.free_slots(), free);
    for (int i = 0; i < core.num_apps(); ++i)
        EXPECT_EQ(core.index_of(core.id_at(i)), i);
}

/**
 * The incremental-vs-rebuild property: a fresh evaluator over the
 * core's current instance list must predict exactly (bit-identical)
 * the times the core maintained through deltas.
 */
void
expect_matches_rebuild(const SchedulerCore& core)
{
    ModelEvaluator fresh(shared_registry(),
                         core.placement().instances());
    const std::vector<double> expected =
        fresh.predict(core.placement());
    const std::vector<double>& actual = core.times();
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(expected[i], actual[i]) << "instance " << i;
}

} // namespace

// --- Trace format ------------------------------------------------------

TEST(SchedTrace, SerializeParseRoundTripIsByteExact)
{
    TraceGenOptions gopts;
    gopts.num_nodes = 12;
    gopts.duration = 300.0;
    gopts.arrival_rate = 0.1;
    gopts.mean_lifetime = 80.0;
    gopts.max_units = 3;
    gopts.crash_rate = 0.01;
    gopts.seed = 7;
    const Trace trace = generate_trace(gopts);
    ASSERT_FALSE(trace.events.empty());

    const std::string text = serialize_trace(trace);
    const Trace back = parse_str(text);
    EXPECT_EQ(back.num_nodes, trace.num_nodes);
    EXPECT_EQ(back.slots_per_node, trace.slots_per_node);
    ASSERT_EQ(back.events.size(), trace.events.size());
    // Byte-exact round trip: re-serializing the parse reproduces the
    // original text (times survive via 17 significant digits).
    EXPECT_EQ(serialize_trace(back), text);
}

TEST(SchedTrace, GenerationIsAPureFunctionOfOptions)
{
    TraceGenOptions gopts;
    gopts.num_nodes = 10;
    gopts.duration = 200.0;
    gopts.arrival_rate = 0.1;
    gopts.crash_rate = 0.01;
    gopts.seed = 5;
    const std::string a = serialize_trace(generate_trace(gopts));
    const std::string b = serialize_trace(generate_trace(gopts));
    EXPECT_EQ(a, b);
    gopts.seed = 6;
    EXPECT_NE(serialize_trace(generate_trace(gopts)), a);
}

TEST(SchedTrace, CrashProcessOnlyCrashesLiveNodesAndJoinsDownOnes)
{
    TraceGenOptions gopts;
    gopts.num_nodes = 6;
    gopts.duration = 2000.0;
    gopts.arrival_rate = 0.01;
    gopts.crash_rate = 0.05; // many crash/repair cycles
    gopts.mean_repair = 30.0;
    gopts.seed = 11;
    const Trace trace = generate_trace(gopts);
    std::set<sim::NodeId> down;
    int crashes = 0;
    for (const auto& e : trace.events) {
        if (e.kind == EventKind::kCrash) {
            EXPECT_EQ(down.count(e.node), 0u);
            down.insert(e.node);
            ++crashes;
        } else if (e.kind == EventKind::kJoin) {
            EXPECT_EQ(down.erase(e.node), 1u);
        }
    }
    EXPECT_GT(crashes, 5);
    // Never more than half the cluster down at once (generator rule).
    EXPECT_LE(static_cast<int>(down.size()), gopts.num_nodes / 2);
}

TEST(SchedTrace, StrictParserRejectsMalformedInput)
{
    const std::string ok = "imc-trace v1\n"
                           "cluster 4 2\n"
                           "arrive 1.0 1 C.gcc 2 0\n"
                           "depart 2.0 1\n"
                           "end\n";
    EXPECT_EQ(parse_str(ok).events.size(), 2u);

    EXPECT_THROW(parse_str("imc-trace v2\ncluster 4 2\nend\n"),
                 ConfigError); // bad magic
    EXPECT_THROW(parse_str("imc-trace v1\ncluster 4 2\n"),
                 ConfigError); // missing end
    EXPECT_THROW(parse_str("imc-trace v1\ncluster 4 2\nend\nextra\n"),
                 ConfigError); // content after end
    EXPECT_THROW(parse_str("imc-trace v1\ncluster 4 2 junk\nend\n"),
                 ConfigError); // trailing garbage
    EXPECT_THROW(
        parse_str("imc-trace v1\ncluster 4 2\n"
                  "arrive 1.0 1 C.gcc 2 0 junk\nend\n"),
        ConfigError); // trailing garbage on an event line
    EXPECT_THROW(parse_str("imc-trace v1\ncluster 4 2\nfrobnicate 1 2\n"
                           "end\n"),
                 ConfigError); // unknown keyword
    EXPECT_THROW(
        parse_str("imc-trace v1\ncluster 4 2\n"
                  "arrive 1.0 1 C.gcc 2 0\narrive 2.0 1 C.gcc 1 0\n"
                  "end\n"),
        ConfigError); // duplicate arrive id
    EXPECT_THROW(parse_str("imc-trace v1\ncluster 4 2\ndepart 1.0 9\n"
                           "end\n"),
                 ConfigError); // depart of unknown id
    EXPECT_THROW(
        parse_str("imc-trace v1\ncluster 4 2\n"
                  "arrive 2.0 1 C.gcc 1 0\narrive 1.0 2 C.gcc 1 0\n"
                  "end\n"),
        ConfigError); // decreasing times
    EXPECT_THROW(parse_str("imc-trace v1\ncluster 4 2\n"
                           "arrive 1.0 1 C.gcc 5 0\nend\n"),
                 ConfigError); // more units than nodes
    EXPECT_THROW(parse_str("imc-trace v1\ncluster 4 2\ncrash 1.0 9\n"
                           "end\n"),
                 ConfigError); // node out of range
    EXPECT_THROW(parse_str("imc-trace v1\ncluster 4 2\n"
                           "arrive 1.0 1 X.nope 1 0\nend\n"),
                 ConfigError); // unknown catalog abbreviation
}

// --- SchedulerCore -----------------------------------------------------

TEST(SchedCore, IncrementalStateMatchesRebuildAfterEveryEvent)
{
    TraceGenOptions gopts;
    gopts.num_nodes = 10;
    gopts.slots_per_node = 2;
    gopts.duration = 500.0;
    gopts.arrival_rate = 0.06;
    gopts.mean_lifetime = 150.0;
    gopts.max_units = 2;
    gopts.slo_fraction = 0.4;
    gopts.crash_rate = 0.004;
    gopts.mean_repair = 60.0;
    gopts.seed = 3;
    gopts.apps = small_pool();
    const Trace trace = generate_trace(gopts);
    ASSERT_GT(trace.events.size(), 20u);

    ModelEvaluator eval(shared_registry(), {});
    SchedOptions opts;
    opts.seed = 21;
    SchedulerCore core(eval, gopts.num_nodes, gopts.slots_per_node,
                       opts);
    for (const auto& e : trace.events) {
        apply_event(core, e);
        expect_invariants(core, gopts.num_nodes, gopts.slots_per_node);
        expect_matches_rebuild(core);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_GT(core.events_seen(), 0u);
}

TEST(SchedCore, BestEffortArrivalsRespectCapacityWithoutEvicting)
{
    ModelEvaluator eval(shared_registry(), {});
    SchedulerCore core(eval, 2, 2, SchedOptions{});
    const AppSpec& gcc = find_app("C.gcc");

    EXPECT_TRUE(core.arrive(1, gcc, 2, 0.0).admitted);
    EXPECT_TRUE(core.arrive(2, gcc, 2, 0.0).admitted);
    EXPECT_EQ(core.free_slots(), 0);

    // Full cluster: a best-effort arrival never evicts — rejected.
    const Admission adm = core.arrive(3, gcc, 1, 0.0);
    EXPECT_FALSE(adm.admitted);
    EXPECT_TRUE(adm.evicted.empty());
    EXPECT_EQ(core.num_apps(), 2);
    EXPECT_EQ(core.index_of(3), -1);
}

TEST(SchedCore, SloArrivalEvictsBestEffortButNeverSloApps)
{
    ModelEvaluator eval(shared_registry(), {});
    SchedulerCore core(eval, 2, 1, SchedOptions{});
    const AppSpec& gcc = find_app("C.gcc");

    EXPECT_TRUE(core.arrive(1, gcc, 1, 0.0).admitted);
    EXPECT_TRUE(core.arrive(2, gcc, 1, 0.0).admitted);

    // An SLO arrival may kill best-effort work to get in.
    const Admission a4 = core.arrive(4, gcc, 1, 1.5);
    EXPECT_TRUE(a4.admitted);
    ASSERT_EQ(a4.evicted.size(), 1u);
    EXPECT_EQ(core.index_of(a4.evicted[0]), -1);

    const Admission a5 = core.arrive(5, gcc, 1, 1.5);
    EXPECT_TRUE(a5.admitted);
    ASSERT_EQ(a5.evicted.size(), 1u);

    // Only SLO apps remain: the next SLO arrival finds no victims.
    EXPECT_EQ(core.num_apps(), 2);
    const Admission a6 = core.arrive(6, gcc, 1, 1.5);
    EXPECT_FALSE(a6.admitted);
    EXPECT_TRUE(a6.evicted.empty());
    EXPECT_GE(core.index_of(4), 0);
    EXPECT_GE(core.index_of(5), 0);
}

TEST(SchedCore, EvictionCanBeDisabled)
{
    ModelEvaluator eval(shared_registry(), {});
    SchedOptions opts;
    opts.allow_eviction = false;
    SchedulerCore core(eval, 2, 1, opts);
    const AppSpec& gcc = find_app("C.gcc");

    EXPECT_TRUE(core.arrive(1, gcc, 1, 0.0).admitted);
    EXPECT_TRUE(core.arrive(2, gcc, 1, 0.0).admitted);
    const Admission adm = core.arrive(3, gcc, 1, 1.5);
    EXPECT_FALSE(adm.admitted);
    EXPECT_TRUE(adm.evicted.empty());
    EXPECT_EQ(core.num_apps(), 2);
}

TEST(SchedCore, DepartFreesCapacityAndUnknownIdsAreTolerated)
{
    ModelEvaluator eval(shared_registry(), {});
    SchedulerCore core(eval, 2, 1, SchedOptions{});
    const AppSpec& gcc = find_app("C.gcc");

    EXPECT_TRUE(core.arrive(1, gcc, 2, 0.0).admitted);
    EXPECT_FALSE(core.depart(42)); // never arrived: tolerated
    EXPECT_EQ(core.num_apps(), 1);
    EXPECT_TRUE(core.depart(1));
    EXPECT_FALSE(core.depart(1)); // already gone
    EXPECT_EQ(core.num_apps(), 0);
    EXPECT_EQ(core.free_slots(), 2);
    EXPECT_TRUE(core.arrive(2, gcc, 2, 0.0).admitted);
}

TEST(SchedCore, CrashMovesUnitsOffDeadNodeAndJoinRevivesIt)
{
    ModelEvaluator eval(shared_registry(), {});
    SchedulerCore core(eval, 4, 2, SchedOptions{});
    const AppSpec& gcc = find_app("C.gcc");
    const AppSpec& km = find_app("H.KM");

    EXPECT_TRUE(core.arrive(1, gcc, 2, 0.0).admitted);
    EXPECT_TRUE(core.arrive(2, km, 2, 0.0).admitted);

    const sim::NodeId dead = core.placement().node_of(0, 0);
    const int displaced = core.load_of(dead);
    ASSERT_GT(displaced, 0);

    const RepairOutcome out = core.crash(dead);
    EXPECT_EQ(out.moved_units, displaced);
    EXPECT_TRUE(out.evicted.empty());
    EXPECT_FALSE(core.node_alive(dead));
    EXPECT_EQ(core.load_of(dead), 0);
    expect_invariants(core, 4, 2);
    expect_matches_rebuild(core);

    // Crashing an already-dead node is a no-op.
    EXPECT_EQ(core.crash(dead).moved_units, 0);

    EXPECT_TRUE(core.join(dead));
    EXPECT_FALSE(core.join(dead)); // already alive
    EXPECT_TRUE(core.node_alive(dead));
    expect_invariants(core, 4, 2);
}

TEST(SchedCore, CrashEvictsBestEffortWhenSurvivorsCannotHoldAll)
{
    ModelEvaluator eval(shared_registry(), {});
    SchedulerCore core(eval, 2, 1, SchedOptions{});
    const AppSpec& gcc = find_app("C.gcc");

    EXPECT_TRUE(core.arrive(1, gcc, 1, 1.5).admitted); // SLO
    EXPECT_TRUE(core.arrive(2, gcc, 1, 0.0).admitted); // best-effort
    const int slo_node = core.placement().node_of(0, 0);

    // The SLO app's node dies; the only free room is the best-effort
    // app's slot, so the displaced SLO unit evicts it.
    const RepairOutcome out = core.crash(slo_node);
    EXPECT_EQ(out.moved_units, 1);
    ASSERT_EQ(out.evicted.size(), 1u);
    EXPECT_EQ(out.evicted[0], 2);
    EXPECT_EQ(core.num_apps(), 1);
    EXPECT_GE(core.index_of(1), 0);
    expect_invariants(core, 2, 1);
}

// --- Replay ------------------------------------------------------------

TEST(SchedReplay, ReplayIsDeterministic)
{
    TraceGenOptions gopts;
    gopts.num_nodes = 8;
    gopts.duration = 300.0;
    gopts.arrival_rate = 0.08;
    gopts.mean_lifetime = 100.0;
    gopts.max_units = 2;
    gopts.crash_rate = 0.005;
    gopts.seed = 17;
    gopts.apps = small_pool();
    const Trace trace = generate_trace(gopts);

    ReplayOptions ropts;
    ropts.oracle_iterations = 500;
    ReplayResult first;
    {
        ModelEvaluator eval(shared_registry(), {});
        first = replay(trace, eval, ropts);
    }
    ModelEvaluator eval(shared_registry(), {});
    const ReplayResult second = replay(trace, eval, ropts);

    EXPECT_EQ(second.events, first.events);
    EXPECT_EQ(second.admitted, first.admitted);
    EXPECT_EQ(second.rejected, first.rejected);
    EXPECT_EQ(second.evictions, first.evictions);
    EXPECT_EQ(second.moved_units, first.moved_units);
    EXPECT_EQ(second.final_apps, first.final_apps);
    EXPECT_EQ(second.final_total_time, first.final_total_time);
    EXPECT_EQ(second.final_objective, first.final_objective);
    ASSERT_EQ(second.oracle.size(), first.oracle.size());
    for (std::size_t i = 0; i < first.oracle.size(); ++i) {
        EXPECT_EQ(second.oracle[i].sched_total,
                  first.oracle[i].sched_total);
        EXPECT_EQ(second.oracle[i].oracle_total,
                  first.oracle[i].oracle_total);
    }
}

TEST(SchedReplay, ExecuteModeDrivesTheSimulation)
{
    TraceGenOptions gopts;
    gopts.num_nodes = 6;
    gopts.duration = 120.0;
    gopts.arrival_rate = 0.08;
    gopts.mean_lifetime = 50.0;
    gopts.max_units = 2;
    gopts.crash_rate = 0.0; // execute mode forbids joins
    gopts.seed = 23;
    gopts.apps = small_pool();
    const Trace trace = generate_trace(gopts);
    ASSERT_FALSE(trace.events.empty());

    ModelEvaluator eval(shared_registry(), {});
    ReplayOptions ropts;
    ropts.oracle_iterations = 0;
    ropts.execute = true;
    const ReplayResult r = replay(trace, eval, ropts);
    EXPECT_GT(r.admitted, 0);
    EXPECT_GT(r.exec_events, 0u);
    EXPECT_GE(r.exec_sim_time, trace.events.back().time);
}

// Regression: detaching an executed app must not destroy it while the
// sim queue still holds events capturing it (task-pool shuffle events,
// zero-delay grants, barrier releases) — the executor retires detached
// apps and keeps them alive until the simulation is torn down. A
// churn-heavy task-pool trace used to crash with a use-after-free in
// TaskPool::open_stage when a departed app's shuffle event fired.
TEST(SchedReplay, ExecuteModeSurvivesTaskPoolChurn)
{
    TraceGenOptions gopts;
    gopts.num_nodes = 16;
    gopts.duration = 200.0;
    gopts.arrival_rate = 0.25;
    gopts.mean_lifetime = 20.0;
    gopts.max_units = 3;
    gopts.crash_rate = 0.0;
    gopts.seed = 11;
    gopts.apps = {find_app("H.KM")};
    const Trace trace = generate_trace(gopts);
    ASSERT_FALSE(trace.events.empty());

    ModelEvaluator eval(shared_registry(), {});
    ReplayOptions ropts;
    ropts.oracle_iterations = 0;
    ropts.execute = true;
    const ReplayResult r = replay(trace, eval, ropts);
    EXPECT_GT(r.departures, 0);
    EXPECT_GT(r.exec_events, 0u);
}

TEST(SchedReplay, ExecuteModeRejectsTracesWithJoins)
{
    Trace trace;
    trace.num_nodes = 4;
    TraceEvent crash;
    crash.kind = EventKind::kCrash;
    crash.time = 1.0;
    crash.node = 0;
    TraceEvent join;
    join.kind = EventKind::kJoin;
    join.time = 2.0;
    join.node = 0;
    trace.events = {crash, join};

    ModelEvaluator eval(shared_registry(), {});
    ReplayOptions ropts;
    ropts.oracle_iterations = 0;
    ropts.execute = true;
    EXPECT_THROW(replay(trace, eval, ropts), ConfigError);
}

// --- Simulator attach/detach ------------------------------------------

TEST(SchedExec, DetachWithdrawsAnAppMidRun)
{
    sim::Simulation sim(sim::ClusterSpec::private8());
    bool completed = false;
    LaunchOptions lo;
    lo.nodes = {0, 1};
    lo.rng = Rng(5);
    lo.on_complete = [&completed] { completed = true; };
    auto app = launch(sim, find_app("M.lmps"), std::move(lo));

    // Let it make some progress, then withdraw it mid-flight.
    for (int i = 0; i < 20 && sim.step(); ++i) {
    }
    ASSERT_FALSE(app->done());
    app->detach();
    EXPECT_TRUE(app->detached());

    // The drained simulation terminates and the app never completes.
    while (sim.step()) {
    }
    EXPECT_FALSE(completed);
    EXPECT_FALSE(app->done());
    // Idempotent.
    app->detach();
    EXPECT_TRUE(app->detached());
}

// --- Fault injection (chaos + TSan CI jobs) ---------------------------

TEST(FaultSched, AdmitFaultRejectsArrivalsDeterministically)
{
    ArmGuard guard(9, "sched.admit:fail:1");
    ModelEvaluator eval(shared_registry(), {});
    SchedulerCore core(eval, 4, 2, SchedOptions{});
    const Admission adm = core.arrive(1, find_app("C.gcc"), 1, 0.0);
    EXPECT_FALSE(adm.admitted);
    EXPECT_TRUE(adm.fault_rejected);
    EXPECT_EQ(core.num_apps(), 0);
    EXPECT_EQ(core.free_slots(), 8);
}

TEST(FaultSched, EvictFaultVetoesVictimsLeavingThemPlaced)
{
    ArmGuard guard(9, "sched.evict:fail:1");
    ModelEvaluator eval(shared_registry(), {});
    SchedulerCore core(eval, 2, 1, SchedOptions{});
    const AppSpec& gcc = find_app("C.gcc");
    EXPECT_TRUE(core.arrive(1, gcc, 1, 0.0).admitted);
    EXPECT_TRUE(core.arrive(2, gcc, 1, 0.0).admitted);

    // Every eviction candidate is vetoed: the SLO arrival cannot make
    // room and is rejected, with both best-effort apps untouched.
    const Admission adm = core.arrive(3, gcc, 1, 1.5);
    EXPECT_FALSE(adm.admitted);
    EXPECT_TRUE(adm.evicted.empty());
    EXPECT_EQ(core.num_apps(), 2);
    EXPECT_GE(core.index_of(1), 0);
    EXPECT_GE(core.index_of(2), 0);
}

TEST(FaultSched, ReplayIsByteIdenticalAcrossThreadCountsUnderFaults)
{
    // Probabilistic admit/evict faults armed: decisions are a pure
    // function of (seed, site, key, attempt), so replays must agree
    // regardless of the RunService thread count used for profiling.
    ArmGuard guard(31, "sched.admit:fail:0.3,sched.evict:fail:0.5");

    TraceGenOptions gopts;
    gopts.num_nodes = 6;
    gopts.slots_per_node = 2;
    gopts.duration = 400.0;
    gopts.arrival_rate = 0.08;
    gopts.mean_lifetime = 90.0;
    gopts.max_units = 2;
    gopts.slo_fraction = 0.5;
    gopts.crash_rate = 0.004;
    gopts.seed = 13;
    gopts.apps = {find_app("C.gcc"), find_app("M.lmps")};
    const Trace trace = generate_trace(gopts);

    std::vector<ReplayResult> results;
    for (const int threads : {1, 4, 8}) {
        RunService service(threads);
        ModelRegistry registry(fast_cfg(), fast_opts(), &service);
        for (int units = 1; units <= gopts.max_units; ++units)
            registry.prefetch(gopts.apps, units);
        ModelEvaluator eval(registry, {});
        ReplayOptions ropts;
        ropts.oracle_iterations = 300;
        results.push_back(replay(trace, eval, ropts));
    }
    ASSERT_GT(results[0].fault_rejected, 0);
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].admitted, results[0].admitted);
        EXPECT_EQ(results[i].rejected, results[0].rejected);
        EXPECT_EQ(results[i].fault_rejected, results[0].fault_rejected);
        EXPECT_EQ(results[i].evictions, results[0].evictions);
        EXPECT_EQ(results[i].moved_units, results[0].moved_units);
        EXPECT_EQ(results[i].final_apps, results[0].final_apps);
        EXPECT_EQ(results[i].final_total_time,
                  results[0].final_total_time);
        EXPECT_EQ(results[i].final_objective,
                  results[0].final_objective);
        ASSERT_EQ(results[i].oracle.size(), results[0].oracle.size());
        for (std::size_t k = 0; k < results[0].oracle.size(); ++k)
            EXPECT_EQ(results[i].oracle[k].oracle_total,
                      results[0].oracle[k].oracle_total);
    }
}
