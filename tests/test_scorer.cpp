/**
 * @file
 * Tests of bubble score measurement: the scorer must recover each
 * application's calibrated generated-interference intensity.
 */

#include <gtest/gtest.h>

#include "core/scorer.hpp"
#include "workload/catalog.hpp"

using namespace imc;
using namespace imc::core;
using namespace imc::workload;

namespace {

RunConfig
fast_cfg()
{
    RunConfig cfg;
    cfg.reps = 1;
    cfg.seed = 31;
    return cfg;
}

const BubbleScorer&
shared_scorer()
{
    static const BubbleScorer scorer(fast_cfg());
    return scorer;
}

} // namespace

TEST(BubbleScorer, CalibrationCurveMonotone)
{
    const auto& curve = shared_scorer().calibration();
    ASSERT_EQ(curve.size(), 9u); // pressures 0..8
    EXPECT_DOUBLE_EQ(curve[0], 1.0);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i - 1] - 0.02)
            << "calibration dips at pressure " << i;
    EXPECT_GT(curve.back(), 1.15); // a p8 bubble must hurt the probe
}

TEST(BubbleScorer, RecoversBubblePressureItself)
{
    // Scoring a bubble at pressure p must give back ~p.
    const auto& scorer = shared_scorer();
    for (double p : {2.0, 5.0}) {
        const double s = scorer.score(bubble_as_app(p), {0});
        EXPECT_NEAR(s, p, 0.8) << "pressure " << p;
    }
}

TEST(BubbleScorer, AggressiveAppsScoreHigherThanGentleOnes)
{
    const auto& scorer = shared_scorer();
    const auto nodes =
        all_nodes(fast_cfg().cluster);
    const double libq = scorer.score(find_app("C.libq"), nodes);
    const double km = scorer.score(find_app("H.KM"), nodes);
    EXPECT_GT(libq, km + 2.0);
}

TEST(BubbleScorer, ScoresWithinPressureScale)
{
    const auto& scorer = shared_scorer();
    const auto nodes = all_nodes(fast_cfg().cluster);
    for (const auto& abbrev : {"M.lmps", "N.mg", "S.WC"}) {
        const double s = scorer.score(find_app(abbrev), nodes);
        EXPECT_GE(s, 0.0) << abbrev;
        EXPECT_LE(s, 8.0) << abbrev;
    }
}

TEST(BubbleScorer, ReporterSpecIsWellFormed)
{
    const auto probe = reporter_spec();
    EXPECT_EQ(probe.kind, AppKind::Batch);
    EXPECT_GT(probe.demand.gen_mb, 0.0);
    EXPECT_GT(probe.batch.total_work, 0.0);
}

TEST(BubbleScorer, BubbleAsAppCarriesPressureDemand)
{
    const auto b2 = bubble_as_app(2.0);
    const auto b7 = bubble_as_app(7.0);
    EXPECT_GT(b7.demand.gen_mb, b2.demand.gen_mb);
    EXPECT_GT(b7.demand.bw_gbps, b2.demand.bw_gbps);
}
