/**
 * @file
 * Unit tests of the sensitivity matrix and its bilinear lookup.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/sensitivity_matrix.hpp"

using namespace imc;
using namespace imc::core;

namespace {

SensitivityMatrix
simple()
{
    // 2 pressure levels, 2 hosts.
    return SensitivityMatrix({{1.0, 1.2, 1.4}, {1.0, 1.6, 2.0}});
}

} // namespace

TEST(SensitivityMatrix, DimensionsReported)
{
    const auto m = simple();
    EXPECT_EQ(m.pressure_levels(), 2);
    EXPECT_EQ(m.hosts(), 2);
}

TEST(SensitivityMatrix, ExactLookups)
{
    const auto m = simple();
    EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.4);
    EXPECT_DOUBLE_EQ(m.at(2, 1), 1.6);
}

TEST(SensitivityMatrix, AtRangeChecked)
{
    const auto m = simple();
    EXPECT_THROW(m.at(0, 0), ConfigError);
    EXPECT_THROW(m.at(3, 0), ConfigError);
    EXPECT_THROW(m.at(1, 3), ConfigError);
    EXPECT_THROW(m.at(1, -1), ConfigError);
}

TEST(SensitivityMatrix, LookupMatchesAtOnGrid)
{
    const auto m = simple();
    for (int p = 1; p <= 2; ++p) {
        for (int j = 0; j <= 2; ++j)
            EXPECT_DOUBLE_EQ(m.lookup(p, j), m.at(p, j));
    }
}

TEST(SensitivityMatrix, LookupInterpolatesNodes)
{
    const auto m = simple();
    EXPECT_DOUBLE_EQ(m.lookup(1.0, 0.5), 1.1);
    EXPECT_DOUBLE_EQ(m.lookup(2.0, 1.5), 1.8);
}

TEST(SensitivityMatrix, LookupInterpolatesPressure)
{
    const auto m = simple();
    EXPECT_DOUBLE_EQ(m.lookup(1.5, 1.0), 1.4);
    EXPECT_DOUBLE_EQ(m.lookup(1.5, 2.0), 1.7);
}

TEST(SensitivityMatrix, SubUnityPressureSnapsToLowestRow)
{
    const auto m = simple();
    // Pressure 0 means no interference: exactly 1 everywhere.
    EXPECT_DOUBLE_EQ(m.lookup(0.0, 2.0), 1.0);
    // Any positive pressure below 1 behaves like the lowest profiled
    // level: a busy co-tenant is never "free" (Dom0 effect).
    EXPECT_DOUBLE_EQ(m.lookup(0.5, 2.0), 1.4);
    EXPECT_DOUBLE_EQ(m.lookup(0.01, 2.0), 1.4);
}

TEST(SensitivityMatrix, LookupClampsOutOfRange)
{
    const auto m = simple();
    EXPECT_DOUBLE_EQ(m.lookup(9.0, 2.0), m.at(2, 2));
    EXPECT_DOUBLE_EQ(m.lookup(1.0, 9.0), m.at(1, 2));
    EXPECT_DOUBLE_EQ(m.lookup(-1.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(m.lookup(1.0, -1.0), 1.0);
}

TEST(SensitivityMatrix, BilinearInterior)
{
    const auto m = simple();
    // Midpoint of the four corners (1,1)=1.2 (1,2)=1.4 (2,1)=1.6
    // (2,2)=2.0 -> 1.55.
    EXPECT_DOUBLE_EQ(m.lookup(1.5, 1.5), 1.55);
}

TEST(SensitivityMatrix, ValidationRejectsBadInput)
{
    EXPECT_THROW(SensitivityMatrix({}), ConfigError);
    // Column 0 must be exactly 1.
    EXPECT_THROW(SensitivityMatrix({{1.1, 1.2}}), ConfigError);
    // Ragged rows.
    EXPECT_THROW(SensitivityMatrix({{1.0, 1.2}, {1.0}}), ConfigError);
    // Nonpositive entries.
    EXPECT_THROW(SensitivityMatrix({{1.0, -0.5}}), ConfigError);
    // Need at least one host column.
    std::vector<std::vector<double>> one_col{{1.0}};
    EXPECT_THROW(SensitivityMatrix{one_col}, ConfigError);
}

TEST(SensitivityMatrix, SingleRowSingleHost)
{
    const SensitivityMatrix m({{1.0, 1.5}});
    EXPECT_DOUBLE_EQ(m.lookup(1.0, 1.0), 1.5);
    EXPECT_DOUBLE_EQ(m.lookup(0.5, 1.0), 1.5); // sub-1 snaps up
    EXPECT_DOUBLE_EQ(m.lookup(1.0, 0.25), 1.125);
}
