/**
 * @file
 * Tests of model serialization: round-tripping, format validation,
 * and robustness against corrupted inputs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/serialize.hpp"

using namespace imc;
using namespace imc::core;

namespace {

InterferenceModel
sample_model()
{
    return InterferenceModel(
        "M.test",
        SensitivityMatrix({{1.0, 1.11, 1.22}, {1.0, 1.31, 1.42},
                           {1.0, 1.51, 1.67}},
                          {0.5, 3.0, 8.0}),
        HeteroPolicy::NPlus1Max, 4.25);
}

} // namespace

TEST(Serialize, RoundTripPreservesEverything)
{
    const auto original = sample_model();
    std::stringstream buffer;
    save_model(buffer, original);
    const auto restored = load_model(buffer);

    EXPECT_EQ(restored.app(), original.app());
    EXPECT_EQ(restored.policy(), original.policy());
    EXPECT_DOUBLE_EQ(restored.bubble_score(),
                     original.bubble_score());
    ASSERT_EQ(restored.matrix().pressure_levels(),
              original.matrix().pressure_levels());
    ASSERT_EQ(restored.matrix().hosts(), original.matrix().hosts());
    EXPECT_EQ(restored.matrix().pressures(),
              original.matrix().pressures());
    for (int i = 1; i <= original.matrix().pressure_levels(); ++i) {
        for (int j = 0; j <= original.matrix().hosts(); ++j)
            EXPECT_DOUBLE_EQ(restored.matrix().at(i, j),
                             original.matrix().at(i, j));
    }
}

TEST(Serialize, RoundTripPredictionsIdentical)
{
    const auto original = sample_model();
    std::stringstream buffer;
    save_model(buffer, original);
    const auto restored = load_model(buffer);
    const std::vector<double> pressures{6.6, 0.0, 2.2, 0.4};
    EXPECT_DOUBLE_EQ(restored.predict(pressures),
                     original.predict(pressures));
}

TEST(Serialize, CommentsAndBlankLinesIgnored)
{
    std::stringstream buffer;
    save_model(buffer, sample_model());
    const std::string text = "# leading comment\n\n" + buffer.str();
    std::stringstream with_noise(text);
    EXPECT_NO_THROW(load_model(with_noise));
}

TEST(Serialize, FileRoundTrip)
{
    const std::string path = "/tmp/imc_test_model.txt";
    save_model_file(path, sample_model());
    const auto restored = load_model_file(path);
    EXPECT_EQ(restored.app(), "M.test");
    std::remove(path.c_str());
}

TEST(Serialize, BadMagicRejected)
{
    std::stringstream buffer("imc-model v9\napp x\n");
    EXPECT_THROW(load_model(buffer), ConfigError);
}

TEST(Serialize, TruncatedInputRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    const std::string text = full.str();
    // Chop the last row off.
    std::stringstream truncated(
        text.substr(0, text.rfind("row")));
    EXPECT_THROW(load_model(truncated), ConfigError);
}

TEST(Serialize, CorruptedValuesRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    std::string text = full.str();
    // Break column 0 of the first row (must be exactly 1).
    const auto pos = text.find("row 1 1");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 6] = '2';
    std::stringstream corrupted(text);
    EXPECT_THROW(load_model(corrupted), ConfigError);
}

TEST(Serialize, RowsOutOfOrderRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    std::string text = full.str();
    // Renumber row 2 as row 3.
    const auto pos = text.find("row 2");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 4] = '3';
    std::stringstream corrupted(text);
    EXPECT_THROW(load_model(corrupted), ConfigError);
}

// Regression: trailing non-numeric junk after the values of a
// "score"/"pressures"/"row" line used to be silently dropped (the
// value loop just stopped at the first bad token), loading a model
// other than the one the file spelled out.
TEST(Serialize, TrailingGarbageOnScoreRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    std::string text = full.str();
    const auto pos = text.find('\n', text.find("score "));
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos, " oops");
    std::stringstream corrupted(text);
    EXPECT_THROW(load_model(corrupted), ConfigError);
}

TEST(Serialize, TrailingGarbageOnPressuresRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    std::string text = full.str();
    const auto pos = text.find('\n', text.find("pressures "));
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos, " 9.9x");
    std::stringstream corrupted(text);
    try {
        load_model(corrupted);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("trailing garbage"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Serialize, TrailingGarbageOnRowRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    std::string text = full.str();
    const auto pos = text.find('\n', text.find("row 2"));
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos, " nan-ish");
    std::stringstream corrupted(text);
    EXPECT_THROW(load_model(corrupted), ConfigError);
}

// Regression: a fourth "row" line in a three-row model used to be
// silently ignored; the matrix the writer meant is ambiguous.
TEST(Serialize, ExtraRowLineRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    std::string text = full.str();
    text += "row 4 1 1.6 1.7\n";
    std::stringstream corrupted(text);
    try {
        load_model(corrupted);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("extra 'row' line"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Serialize, TrailingNonRowContentIgnored)
{
    // Comments or other sections after the matrix stay legal.
    std::stringstream full;
    save_model(full, sample_model());
    std::stringstream with_tail(full.str() +
                                "# trailing comment\nnotes ok\n");
    EXPECT_NO_THROW(load_model(with_tail));
}

// Property: save -> load is the identity, including an app name
// containing spaces (the "app" line carries the whole remainder).
TEST(Serialize, RoundTripAppNameWithSpaces)
{
    const InterferenceModel original(
        "My Spacey App v2",
        SensitivityMatrix({{1.0, 1.2}, {1.0, 1.4}}, {1.0, 4.0}),
        HeteroPolicy::AllMax, 2.5);
    std::stringstream buffer;
    save_model(buffer, original);
    const auto restored = load_model(buffer);
    EXPECT_EQ(restored.app(), "My Spacey App v2");
    EXPECT_EQ(restored.policy(), original.policy());
    EXPECT_DOUBLE_EQ(restored.bubble_score(),
                     original.bubble_score());
    EXPECT_EQ(restored.matrix().pressures(),
              original.matrix().pressures());
    for (int i = 1; i <= original.matrix().pressure_levels(); ++i) {
        for (int j = 0; j <= original.matrix().hosts(); ++j)
            EXPECT_DOUBLE_EQ(restored.matrix().at(i, j),
                             original.matrix().at(i, j));
    }
    // And a second trip through the text form is byte-stable.
    std::stringstream again;
    save_model(again, restored);
    EXPECT_EQ(again.str(), buffer.str());
}

TEST(Serialize, MissingFileRejected)
{
    EXPECT_THROW(load_model_file("/nonexistent/nope.model"),
                 ConfigError);
}

TEST(Serialize, PolicyNamesRoundTrip)
{
    for (const auto policy : all_policies())
        EXPECT_EQ(policy_from_string(to_string(policy)), policy);
    EXPECT_THROW(policy_from_string("NOT A POLICY"), ConfigError);
}

// ---------------------------------------------------------------------
// Seeded fuzz: randomized valid models must round-trip exactly, and
// randomly mutated/truncated streams must either parse to a
// self-consistent model or raise ConfigError — never crash, never
// silently accept junk. All randomness is Rng-seeded, so a failure
// reproduces.
// ---------------------------------------------------------------------

namespace {

InterferenceModel
random_model(Rng& rng, int tag)
{
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    const int m = static_cast<int>(rng.uniform_int(1, 5));
    std::vector<double> pressures;
    double p = rng.uniform(0.1, 2.0);
    for (int i = 0; i < n; ++i) {
        pressures.push_back(p);
        p += rng.uniform(0.1, 3.0);
    }
    std::vector<std::vector<double>> values;
    for (int i = 0; i < n; ++i) {
        std::vector<double> row{1.0};
        for (int j = 0; j < m; ++j)
            row.push_back(rng.uniform(0.05, 10.0));
        values.push_back(std::move(row));
    }
    const auto policies = all_policies();
    const auto policy = policies[static_cast<std::size_t>(
        rng.uniform_index(policies.size()))];
    return InterferenceModel(
        "Fz." + std::to_string(tag),
        SensitivityMatrix(std::move(values), std::move(pressures)),
        policy, rng.uniform(0.0, 20.0));
}

/** load must yield the exact model (doubles compared by bit). */
void
expect_roundtrip_exact(const InterferenceModel& original)
{
    std::stringstream buffer;
    save_model(buffer, original);
    const auto restored = load_model(buffer);
    ASSERT_EQ(restored.app(), original.app());
    ASSERT_EQ(restored.policy(), original.policy());
    ASSERT_EQ(restored.bubble_score(), original.bubble_score());
    ASSERT_EQ(restored.matrix().pressures(),
              original.matrix().pressures());
    ASSERT_EQ(restored.matrix().values(), original.matrix().values());
    // A second trip through the text form is byte-stable.
    std::stringstream again;
    save_model(again, restored);
    ASSERT_EQ(again.str(), buffer.str());
}

} // namespace

TEST(SerializeFuzz, RandomValidModelsRoundTripExactly)
{
    Rng rng(2026);
    for (int tag = 0; tag < 200; ++tag) {
        SCOPED_TRACE(tag);
        expect_roundtrip_exact(random_model(rng, tag));
    }
}

TEST(SerializeFuzz, MutatedStreamsRejectOrStaySelfConsistent)
{
    Rng rng(4242);
    std::stringstream buffer;
    save_model(buffer, random_model(rng, 0));
    const std::string baseline = buffer.str();

    int rejected = 0, accepted = 0;
    for (int round = 0; round < 600; ++round) {
        SCOPED_TRACE(round);
        std::string text = baseline;
        const int flips = static_cast<int>(rng.uniform_int(1, 3));
        for (int f = 0; f < flips; ++f) {
            const auto pos = static_cast<std::size_t>(
                rng.uniform_index(text.size()));
            text[pos] = static_cast<char>(rng.uniform_int(32, 126));
        }
        std::stringstream mutated(text);
        try {
            const auto model = load_model(mutated);
            // A benign mutation (comment, app name, a digit) may
            // still parse; whatever parsed must itself round-trip.
            expect_roundtrip_exact(model);
            ++accepted;
        } catch (const ConfigError&) {
            ++rejected; // clean structured rejection, never a crash
        }
    }
    // The corpus must exercise both outcomes to mean anything.
    EXPECT_GT(rejected, 0);
    EXPECT_GT(accepted, 0);
}

TEST(SerializeFuzz, TruncatedStreamsRejectOrStaySelfConsistent)
{
    Rng rng(1717);
    std::stringstream buffer;
    save_model(buffer, random_model(rng, 1));
    const std::string baseline = buffer.str();

    for (std::size_t cut = 0; cut < baseline.size(); ++cut) {
        SCOPED_TRACE(cut);
        std::stringstream truncated(baseline.substr(0, cut));
        try {
            // Cuts inside a trailing number can still parse (the
            // shorter literal is a valid value); anything else must
            // throw. Either way: self-consistent or ConfigError.
            expect_roundtrip_exact(load_model(truncated));
        } catch (const ConfigError&) {
        }
    }
    // A cut strictly before the matrix can never parse.
    const auto first_row = baseline.find("row 1");
    ASSERT_NE(first_row, std::string::npos);
    std::stringstream headless(baseline.substr(0, first_row));
    EXPECT_THROW(load_model(headless), ConfigError);
}

// Regressions from the fuzz corpus: non-finite numbers parsed by
// strtod ("inf", "nan") used to pass the positivity checks — an
// infinite last pressure or bubble score loaded "successfully" and
// poisoned every later prediction.
TEST(SerializeFuzz, NonFiniteScoreRejected)
{
    for (const char* bad : {"inf", "nan", "-inf"}) {
        std::stringstream full;
        save_model(full, sample_model());
        std::string text = full.str();
        const auto pos = text.find("score ");
        ASSERT_NE(pos, std::string::npos);
        const auto eol = text.find('\n', pos);
        text.replace(pos, eol - pos, std::string("score ") + bad);
        std::stringstream corrupted(text);
        EXPECT_THROW(load_model(corrupted), ConfigError) << bad;
    }
}

TEST(SerializeFuzz, NonFinitePressureRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    std::string text = full.str();
    const auto pos = text.find("pressures ");
    ASSERT_NE(pos, std::string::npos);
    const auto eol = text.find('\n', pos);
    text.replace(pos, eol - pos, "pressures 0.5 3 inf");
    std::stringstream corrupted(text);
    EXPECT_THROW(load_model(corrupted), ConfigError);
}

TEST(SerializeFuzz, NonFiniteRowValueRejected)
{
    std::stringstream full;
    save_model(full, sample_model());
    std::string text = full.str();
    const auto pos = text.find("row 2");
    ASSERT_NE(pos, std::string::npos);
    const auto eol = text.find('\n', pos);
    text.replace(pos, eol - pos, "row 2 1 nan 1.42");
    std::stringstream corrupted(text);
    EXPECT_THROW(load_model(corrupted), ConfigError);
}
