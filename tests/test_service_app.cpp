/**
 * @file
 * The open-loop latency-serving workload suite (DESIGN.md §9).
 *
 * Covers the ServiceApp request pipeline end to end: Zipf key
 * sampling (seeded, deterministic, correctly skewed), token-bucket
 * request shedding (conservation: every arrival is either served or
 * dropped; admission bounded by burst + rate * window), tail-latency
 * monotonicity under added contention, byte-identical request streams
 * across kSeed/kScaled engine modes, and (FaultServe.*, picked up by
 * the chaos and TSan CI jobs) byte-identical trace replays with
 * service apps in the mix across RunService thread counts while
 * sched.admit/sched.evict/run.exec faults are armed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bubble/bubble.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "placement/evaluator.hpp"
#include "sched/replay.hpp"
#include "sched/trace.hpp"
#include "sim/engine.hpp"
#include "workload/catalog.hpp"
#include "workload/run_service.hpp"
#include "workload/runner.hpp"
#include "workload/service_app.hpp"

using namespace imc;
using namespace imc::placement;
using namespace imc::sched;
using namespace imc::workload;

namespace {

RunConfig
fast_cfg()
{
    RunConfig cfg;
    cfg.reps = 1;
    cfg.seed = 91;
    return cfg;
}

core::ModelBuildOptions
fast_opts()
{
    core::ModelBuildOptions opts;
    opts.policy_samples = 6;
    return opts;
}

/** Disarm on scope exit so no test leaks an armed schedule. */
struct ArmGuard {
    ArmGuard(std::uint64_t seed, const std::string& spec)
    {
        fault::arm(seed, spec);
    }
    ~ArmGuard() { fault::disarm(); }
    ArmGuard(const ArmGuard&) = delete;
    ArmGuard& operator=(const ArmGuard&) = delete;
};

/** A small, fast service spec for direct driver tests. */
AppSpec
tiny_service()
{
    AppSpec spec = find_app("V.mc");
    spec.serve.duration = 5.0;
    spec.serve.request_rate = 200.0;
    return spec;
}

struct ServeOutcome {
    std::uint64_t arrived = 0;
    std::uint64_t served = 0;
    std::uint64_t dropped = 0;
    std::uint64_t digest = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double finish = 0.0;
};

/** Run @p spec to completion on fresh a simulation. */
ServeOutcome
run_service_app(const AppSpec& spec, sim::EngineMode mode,
                double bubble_pressure = 0.0, std::uint64_t seed = 5)
{
    sim::Simulation sim(sim::ClusterSpec::private8(),
                        sim::SimOptions{mode});
    const std::vector<sim::NodeId> nodes{0, 1};
    if (bubble_pressure > 0.0) {
        for (sim::NodeId n : nodes)
            sim.add_tenant(n, bubble::bubble_demand(bubble_pressure));
    }
    LaunchOptions opts;
    opts.nodes = nodes;
    opts.procs_per_node = 4;
    opts.rng = Rng(seed);
    ServiceApp app(sim, spec, std::move(opts));
    sim.run(10'000'000);
    EXPECT_TRUE(app.done());
    ServeOutcome out;
    out.arrived = app.arrived();
    out.served = app.served();
    out.dropped = app.dropped();
    out.digest = app.request_digest();
    out.p50 = app.latencies().quantile(50.0);
    out.p95 = app.latencies().quantile(95.0);
    out.p99 = app.latencies().quantile(99.0);
    out.finish = app.finish_time();
    return out;
}

} // namespace

// --- Zipf sampler ------------------------------------------------------

TEST(ServiceZipf, SkewConcentratesOnHotKeys)
{
    ZipfSampler zipf(100, 0.99);
    Rng rng(7);
    std::vector<int> counts(100, 0);
    constexpr int kDraws = 20'000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[static_cast<std::size_t>(zipf.sample(rng.uniform()))];
    // H_0.99(100) ~ 5.4, so key 0 takes ~18.5% of the traffic.
    EXPECT_GT(counts[0], kDraws / 7);
    EXPECT_LT(counts[0], kDraws / 4);
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
    // Seeded draws are exactly reproducible.
    Rng rng2(7);
    std::vector<int> counts2(100, 0);
    for (int i = 0; i < kDraws; ++i)
        ++counts2[static_cast<std::size_t>(
            zipf.sample(rng2.uniform()))];
    EXPECT_EQ(counts, counts2);
}

TEST(ServiceZipf, ThetaZeroIsUniform)
{
    const ZipfSampler zipf(4, 0.0);
    EXPECT_EQ(zipf.sample(0.0), 0);
    EXPECT_EQ(zipf.sample(0.24), 0);
    EXPECT_EQ(zipf.sample(0.26), 1);
    EXPECT_EQ(zipf.sample(0.51), 2);
    EXPECT_EQ(zipf.sample(0.76), 3);
    EXPECT_EQ(zipf.sample(0.999), 3);
}

TEST(ServiceZipf, SampleIsAPureFunctionOfU)
{
    const ZipfSampler zipf(1024, 0.99);
    EXPECT_EQ(zipf.sample(0.37), zipf.sample(0.37));
    EXPECT_EQ(zipf.num_keys(), 1024);
}

// --- Token bucket + request accounting ---------------------------------

TEST(ServiceApp, EveryArrivalIsServedOrDropped)
{
    const ServeOutcome out =
        run_service_app(tiny_service(), sim::EngineMode::kScaled);
    EXPECT_GT(out.arrived, 500u);
    EXPECT_EQ(out.arrived, out.served + out.dropped);
    EXPECT_GT(out.served, 0u);
    // The window closed before the queues drained, so the app
    // finishes at or after the configured duration.
    EXPECT_GE(out.finish, 5.0);
}

TEST(ServiceApp, TokenBucketShedsOverRateLoadAndConservesTokens)
{
    AppSpec spec = tiny_service();
    spec.serve.bucket_rate = 2.0;
    spec.serve.bucket_burst = 3.0;
    const ServeOutcome out =
        run_service_app(spec, sim::EngineMode::kScaled);
    EXPECT_GT(out.dropped, 0u);
    EXPECT_EQ(out.arrived, out.served + out.dropped);
    // Token conservation: no VM can admit more than its initial burst
    // plus the refill over the arrival window (8 VMs on 2 nodes).
    const double per_vm = spec.serve.bucket_burst +
                          spec.serve.duration * spec.serve.bucket_rate;
    EXPECT_LE(out.served, static_cast<std::uint64_t>(8.0 * per_vm) + 8);
}

// --- Interference shows up in the tail ---------------------------------

TEST(ServiceApp, ContentionRaisesTailLatency)
{
    AppSpec spec = find_app("V.srch");
    spec.serve.duration = 8.0;
    const ServeOutcome quiet =
        run_service_app(spec, sim::EngineMode::kScaled);
    const ServeOutcome loaded =
        run_service_app(spec, sim::EngineMode::kScaled,
                        /*bubble_pressure=*/5.0);
    // Same seed, same request stream: the only difference is the
    // co-located bubble, which slows every compute and lets queues
    // build — tail first.
    EXPECT_GT(loaded.p99, quiet.p99);
    EXPECT_GT(loaded.p99, loaded.p50);
    EXPECT_GE(quiet.p95, quiet.p50);
}

TEST(ServiceApp, RunnerReportsTailLatencyAsTheMetric)
{
    AppSpec spec = find_app("V.web");
    spec.serve.duration = 5.0;
    RunConfig cfg = fast_cfg();
    const std::vector<sim::NodeId> nodes{0, 1};
    const double solo = run_solo_time(spec, nodes, cfg);
    // The metric is a p99 latency in seconds — on the order of the
    // service time, nowhere near a makespan.
    EXPECT_GT(solo, 0.0);
    EXPECT_LT(solo, 2.0);
    const double norm = run_with_bubbles_norm(
        spec, nodes, std::vector<double>(8, 4.0), cfg);
    EXPECT_GT(norm, 1.0);
}

// --- Determinism -------------------------------------------------------

TEST(ServiceApp, SeedAndScaledEnginesAgreeByteForByte)
{
    const AppSpec spec = tiny_service();
    const ServeOutcome seed =
        run_service_app(spec, sim::EngineMode::kSeed);
    const ServeOutcome scaled =
        run_service_app(spec, sim::EngineMode::kScaled);
    EXPECT_EQ(seed.arrived, scaled.arrived);
    EXPECT_EQ(seed.served, scaled.served);
    EXPECT_EQ(seed.dropped, scaled.dropped);
    EXPECT_EQ(seed.digest, scaled.digest);
    EXPECT_EQ(seed.p50, scaled.p50);
    EXPECT_EQ(seed.p95, scaled.p95);
    EXPECT_EQ(seed.p99, scaled.p99);
    EXPECT_EQ(seed.finish, scaled.finish);
}

TEST(ServiceApp, RequestStreamIsAPureFunctionOfTheLaunch)
{
    const AppSpec spec = tiny_service();
    const ServeOutcome a =
        run_service_app(spec, sim::EngineMode::kScaled, 0.0, 11);
    const ServeOutcome b =
        run_service_app(spec, sim::EngineMode::kScaled, 0.0, 11);
    EXPECT_EQ(a.digest, b.digest);
    const ServeOutcome c =
        run_service_app(spec, sim::EngineMode::kScaled, 0.0, 12);
    EXPECT_NE(a.digest, c.digest);
}

// --- Chaos: service apps through the scheduler pipeline ----------------

TEST(FaultServe, ReplayWithServiceAppsIsByteIdenticalAcrossThreads)
{
    // sched.admit/sched.evict flip scheduler decisions and run.exec
    // perturbs the profiling runs behind the service-app models; all
    // are pure functions of (seed, site, key, attempt), so replays
    // must agree at any RunService thread count.
    ArmGuard guard(
        31, "sched.admit:fail:0.3,sched.evict:fail:0.5,run.exec:slow:0.1");

    TraceGenOptions gopts;
    gopts.num_nodes = 6;
    gopts.slots_per_node = 2;
    gopts.duration = 300.0;
    gopts.arrival_rate = 0.08;
    gopts.mean_lifetime = 90.0;
    gopts.max_units = 2;
    gopts.slo_fraction = 0.5;
    gopts.seed = 13;
    gopts.apps = {find_app("V.mc"), find_app("C.gcc")};
    const Trace trace = generate_trace(gopts);

    std::vector<ReplayResult> results;
    for (const int threads : {1, 4, 8}) {
        RunService service(threads);
        core::ModelRegistry registry(fast_cfg(), fast_opts(),
                                     &service);
        for (int units = 1; units <= gopts.max_units; ++units)
            registry.prefetch(gopts.apps, units);
        ModelEvaluator eval(registry, {});
        ReplayOptions ropts;
        results.push_back(replay(trace, eval, ropts));
    }
    ASSERT_GT(results[0].arrivals, 0);
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].admitted, results[0].admitted);
        EXPECT_EQ(results[i].rejected, results[0].rejected);
        EXPECT_EQ(results[i].fault_rejected,
                  results[0].fault_rejected);
        EXPECT_EQ(results[i].evictions, results[0].evictions);
        EXPECT_EQ(results[i].final_apps, results[0].final_apps);
        EXPECT_EQ(results[i].final_total_time,
                  results[0].final_total_time);
        EXPECT_EQ(results[i].final_objective,
                  results[0].final_objective);
    }
}
