/**
 * @file
 * Unit tests of the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

using namespace imc;

TEST(OnlineStats, EmptyIsAllZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample)
{
    OnlineStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 4.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 4.5);
    EXPECT_EQ(s.max(), 4.5);
}

TEST(OnlineStats, KnownMoments)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Unbiased variance of this classic data set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, NegativeValues)
{
    OnlineStats s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -3.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(Stats, MeanAndStddevOfVector)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MeanOfEmptyVectorIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(stddev({}), 0.0);
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileEndpointsAndMiddle)
{
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
}

TEST(Stats, PercentileInterpolates)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 75.0), 7.5);
}

TEST(Stats, PercentileRejectsBadP)
{
    EXPECT_THROW(percentile({1.0}, -1.0), ConfigError);
    EXPECT_THROW(percentile({1.0}, 101.0), ConfigError);
}

TEST(Stats, AbsPctError)
{
    EXPECT_NEAR(abs_pct_error(1.1, 1.0), 10.0, 1e-9);
    EXPECT_NEAR(abs_pct_error(0.9, 1.0), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(abs_pct_error(2.0, 2.0), 0.0);
}

TEST(Stats, MeanAbsPctError)
{
    EXPECT_NEAR(
        mean_abs_pct_error({1.1, 0.8}, {1.0, 1.0}), 15.0, 1e-9);
}

TEST(Stats, MeanAbsPctErrorRejectsMismatch)
{
    EXPECT_THROW(mean_abs_pct_error({1.0}, {1.0, 2.0}), ConfigError);
    EXPECT_THROW(mean_abs_pct_error({}, {}), ConfigError);
}

TEST(Stats, PercentileRejectsEmptyAndNonFinite)
{
    EXPECT_THROW(percentile({}, 50.0), ConfigError);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(percentile({1.0, nan}, 50.0), ConfigError);
    EXPECT_THROW(percentile({inf}, 50.0), ConfigError);
}

// The hand-computed oracle the bench harnesses' late local helpers
// got wrong: a nearest-rank + 0.5 rounding reported p50({1,2}) = 2
// and p99 of 100 evenly spaced samples one rank too high. Pins the
// shared imc::percentile (now the only percentile in the tree) to
// the numpy p/100*(n-1) convention.
TEST(Stats, PercentileMatchesHandComputedOracle)
{
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 50.0), 1.5);
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(static_cast<double>(i));
    // rank = 0.99 * 99 = 98.01 -> 99 + 0.01 * (100 - 99) = 99.01.
    EXPECT_NEAR(percentile(xs, 99.0), 99.01, 1e-12);
    EXPECT_DOUBLE_EQ(percentile({5.0}, 99.0), 5.0);
}

TEST(OnlineStats, AddRejectsNonFinite)
{
    OnlineStats s;
    EXPECT_THROW(s.add(std::numeric_limits<double>::quiet_NaN()),
                 ConfigError);
    EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()),
                 ConfigError);
    EXPECT_EQ(s.count(), 0u);
}

TEST(LatencyRecorder, ExactFieldsAndEmptyBehaviour)
{
    LatencyRecorder r;
    EXPECT_EQ(r.count(), 0u);
    EXPECT_EQ(r.sum(), 0.0);
    EXPECT_EQ(r.mean(), 0.0);
    EXPECT_EQ(r.min(), 0.0);
    EXPECT_EQ(r.max(), 0.0);
    r.add(2.0);
    r.add(4.0);
    r.add(6.0);
    EXPECT_EQ(r.count(), 3u);
    EXPECT_DOUBLE_EQ(r.sum(), 12.0);
    EXPECT_DOUBLE_EQ(r.mean(), 4.0);
    EXPECT_EQ(r.min(), 2.0);
    EXPECT_EQ(r.max(), 6.0);
}

TEST(LatencyRecorder, RejectsNonFiniteAndNegative)
{
    LatencyRecorder r;
    EXPECT_THROW(r.add(std::numeric_limits<double>::quiet_NaN()),
                 ConfigError);
    EXPECT_THROW(r.add(-1.0), ConfigError);
    EXPECT_EQ(r.count(), 0u);
    EXPECT_THROW(r.quantile(50.0), ConfigError);
    EXPECT_THROW([] {
        LatencyRecorder q;
        q.add(1.0);
        q.quantile(101.0);
    }(), ConfigError);
}

// Bucket width is 2^(1/8) - 1 (about 9%), so any quantile estimate
// must sit within one bucket of the exact order statistic.
TEST(LatencyRecorder, QuantilesTrackExactWithinBucketResolution)
{
    imc::Rng rng(7);
    LatencyRecorder r;
    std::vector<double> xs;
    for (int i = 0; i < 20'000; ++i) {
        const double x = 0.001 * rng.lognormal_factor(0.8);
        xs.push_back(x);
        r.add(x);
    }
    for (double q : {50.0, 95.0, 99.0}) {
        const double exact = percentile(xs, q);
        EXPECT_NEAR(r.quantile(q), exact, exact * 0.10)
            << "q=" << q;
    }
    EXPECT_LE(r.quantile(0.0) , r.quantile(50.0));
    EXPECT_LE(r.quantile(50.0), r.quantile(100.0));
    EXPECT_DOUBLE_EQ(r.quantile(0.0), r.min());
    EXPECT_DOUBLE_EQ(r.quantile(100.0), r.max());
    // Log-bucketing keeps the footprint tiny.
    EXPECT_LT(r.buckets(), 200u);
}

TEST(LatencyRecorder, MergeIsOrderIndependent)
{
    imc::Rng rng(11);
    LatencyRecorder whole;
    LatencyRecorder part_a;
    LatencyRecorder part_b;
    for (int i = 0; i < 5'000; ++i) {
        const double x = 0.01 * rng.lognormal_factor(0.5);
        whole.add(x);
        (i % 3 == 0 ? part_a : part_b).add(x);
    }
    LatencyRecorder ab = part_a;
    ab.merge(part_b);
    LatencyRecorder ba = part_b;
    ba.merge(part_a);
    EXPECT_EQ(ab.count(), whole.count());
    EXPECT_EQ(ba.count(), whole.count());
    EXPECT_EQ(ab.min(), whole.min());
    EXPECT_EQ(ab.max(), whole.max());
    for (double q : {1.0, 50.0, 99.0, 99.9}) {
        EXPECT_DOUBLE_EQ(ab.quantile(q), ba.quantile(q)) << q;
        EXPECT_DOUBLE_EQ(ab.quantile(q), whole.quantile(q)) << q;
    }
}

// Property: Welford matches the two-pass formula on random data.
class WelfordSweep : public ::testing::TestWithParam<int> {};

TEST_P(WelfordSweep, MatchesTwoPass)
{
    imc::Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<double> xs;
    OnlineStats s;
    for (int i = 0; i < 1'000; ++i) {
        const double x = rng.uniform(-100.0, 100.0);
        xs.push_back(x);
        s.add(x);
    }
    double two_pass_mean = 0.0;
    for (double x : xs)
        two_pass_mean += x;
    two_pass_mean /= static_cast<double>(xs.size());
    double ss = 0.0;
    for (double x : xs)
        ss += (x - two_pass_mean) * (x - two_pass_mean);
    const double two_pass_var = ss / (static_cast<double>(xs.size()) - 1);
    EXPECT_NEAR(s.mean(), two_pass_mean, 1e-9);
    EXPECT_NEAR(s.variance(), two_pass_var, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfordSweep,
                         ::testing::Range(1, 6));
