/**
 * @file
 * Unit tests of the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

using namespace imc;

TEST(OnlineStats, EmptyIsAllZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample)
{
    OnlineStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 4.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 4.5);
    EXPECT_EQ(s.max(), 4.5);
}

TEST(OnlineStats, KnownMoments)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Unbiased variance of this classic data set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, NegativeValues)
{
    OnlineStats s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -3.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(Stats, MeanAndStddevOfVector)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MeanOfEmptyVectorIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(stddev({}), 0.0);
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileEndpointsAndMiddle)
{
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
}

TEST(Stats, PercentileInterpolates)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 75.0), 7.5);
}

TEST(Stats, PercentileRejectsBadP)
{
    EXPECT_THROW(percentile({1.0}, -1.0), ConfigError);
    EXPECT_THROW(percentile({1.0}, 101.0), ConfigError);
}

TEST(Stats, AbsPctError)
{
    EXPECT_NEAR(abs_pct_error(1.1, 1.0), 10.0, 1e-9);
    EXPECT_NEAR(abs_pct_error(0.9, 1.0), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(abs_pct_error(2.0, 2.0), 0.0);
}

TEST(Stats, MeanAbsPctError)
{
    EXPECT_NEAR(
        mean_abs_pct_error({1.1, 0.8}, {1.0, 1.0}), 15.0, 1e-9);
}

TEST(Stats, MeanAbsPctErrorRejectsMismatch)
{
    EXPECT_THROW(mean_abs_pct_error({1.0}, {1.0, 2.0}), ConfigError);
    EXPECT_THROW(mean_abs_pct_error({}, {}), ConfigError);
}

// Property: Welford matches the two-pass formula on random data.
class WelfordSweep : public ::testing::TestWithParam<int> {};

TEST_P(WelfordSweep, MatchesTwoPass)
{
    imc::Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<double> xs;
    OnlineStats s;
    for (int i = 0; i < 1'000; ++i) {
        const double x = rng.uniform(-100.0, 100.0);
        xs.push_back(x);
        s.add(x);
    }
    double two_pass_mean = 0.0;
    for (double x : xs)
        two_pass_mean += x;
    two_pass_mean /= static_cast<double>(xs.size());
    double ss = 0.0;
    for (double x : xs)
        ss += (x - two_pass_mean) * (x - two_pass_mean);
    const double two_pass_var = ss / (static_cast<double>(xs.size()) - 1);
    EXPECT_NEAR(s.mean(), two_pass_mean, 1e-9);
    EXPECT_NEAR(s.variance(), two_pass_var, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfordSweep,
                         ::testing::Range(1, 6));
