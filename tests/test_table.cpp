/**
 * @file
 * Unit tests of the table/chart/string formatting helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/chart.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

using namespace imc;

TEST(Strings, FmtFixed)
{
    EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmt_fixed(2.0, 0), "2");
    EXPECT_EQ(fmt_fixed(-1.5, 1), "-1.5");
}

TEST(Strings, FmtPct)
{
    EXPECT_EQ(fmt_pct(0.0345), "3.45%");
    EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Strings, JoinAndPad)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(pad_left("x", 3), "  x");
    EXPECT_EQ(pad_right("x", 3), "x  ");
    EXPECT_EQ(pad_left("xyz", 2), "xyz");
    EXPECT_EQ(repeat('-', 3), "---");
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "v"});
    t.add_row({"longer-name", "1"});
    t.add_row({"x", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| longer-name | 1  |"), std::string::npos);
    EXPECT_NE(out.find("| x           | 22 |"), std::string::npos);
}

TEST(Table, RowWidthChecked)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"a", "b"});
    t.add_row({"x,y", "say \"hi\""});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(BarChart, ScalesToMax)
{
    BarChart chart("title", "%");
    chart.add("a", 50.0);
    chart.add("bb", 100.0);
    std::ostringstream os;
    chart.print(os, 10);
    const std::string out = os.str();
    EXPECT_NE(out.find("a  |##### 50.00%"), std::string::npos);
    EXPECT_NE(out.find("bb |########## 100.00%"), std::string::npos);
}

TEST(SeriesChart, GroupsByX)
{
    SeriesChart chart("c", "x");
    const auto s0 = chart.add_series("one");
    const auto s1 = chart.add_series("two");
    chart.add_point(s0, 1.0, 0.5);
    chart.add_point(s1, 1.0, 0.7);
    chart.add_point(s0, 2.0, 0.9);
    std::ostringstream os;
    chart.print(os, 1);
    const std::string out = os.str();
    EXPECT_NE(out.find("| 1 | 0.5 | 0.7 |"), std::string::npos);
    EXPECT_NE(out.find("| 2 | 0.9 | -   |"), std::string::npos);
}
