#include "internal.hpp"
#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>

/**
 * @file
 * The --fix rewriters for the two mechanical rules: include-order
 * (stable-sort the include directives into own-header / <system> /
 * "project" groups, rewriting in place) and header-guard (rename the
 * guard pair to the expected IMC_<PATH>_HPP symbol and annotate the
 * closing #endif). Both are deliberately conservative: a file whose
 * preprocessor structure is unusual (conditional includes, no
 * recognizable guard) is left untouched rather than half-fixed, and
 * both rewrites are idempotent.
 */

namespace imc::lint {

namespace {

std::string
expected_guard(const std::string& path)
{
    std::string p = path;
    if (p.rfind("src/", 0) == 0)
        p = p.substr(4);
    std::string guard = "IMC_";
    for (const char c : p) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard;
}

std::string
file_stem(const std::string& path)
{
    const std::size_t slash = path.rfind('/');
    std::string name = slash == std::string::npos
                           ? path
                           : path.substr(slash + 1);
    const std::size_t dot = name.rfind('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

/** Trimmed directive text when @p line is a preprocessor line. */
std::string
directive(const std::string& line)
{
    const std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#')
        return "";
    return line.substr(pos);
}

bool
fix_include_order(const std::string& path,
                  std::vector<std::string>& lines)
{
    // Reordering an include that sits under an #if would change
    // semantics; only fix files whose conditionals are at most the
    // header guard itself.
    int conditionals = 0;
    for (const std::string& l : lines) {
        const std::string d = directive(l);
        if (d.rfind("#if", 0) == 0)
            ++conditionals;
    }
    const bool is_header =
        path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".hpp") == 0;
    if (conditionals > (is_header ? 1 : 0))
        return false;

    struct Inc {
        std::size_t index;
        int rank;
        std::string text;
    };
    const std::string own = file_stem(path);
    std::vector<Inc> incs;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& l = lines[i];
        std::size_t pos = l.find_first_not_of(" \t");
        if (pos == std::string::npos ||
            l.compare(pos, 8, "#include") != 0)
            continue;
        pos = l.find_first_of("<\"", pos + 8);
        if (pos == std::string::npos)
            continue;
        const bool angle = l[pos] == '<';
        int rank = angle ? 1 : 2;
        if (!angle) {
            const std::size_t end = l.find('"', pos + 1);
            if (end != std::string::npos &&
                file_stem(l.substr(pos + 1, end - pos - 1)) == own)
                rank = 0; // the file's own header leads
        }
        incs.push_back({i, rank, l});
    }
    if (incs.empty())
        return false;
    std::vector<Inc> sorted = incs;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Inc& a, const Inc& b) {
                         return a.rank < b.rank;
                     });
    bool changed = false;
    for (std::size_t i = 0; i < incs.size(); ++i) {
        if (lines[incs[i].index] != sorted[i].text) {
            lines[incs[i].index] = sorted[i].text;
            changed = true;
        }
    }
    return changed;
}

bool
fix_header_guard(const std::string& path,
                 std::vector<std::string>& lines)
{
    if (path.size() < 4 ||
        path.compare(path.size() - 4, 4, ".hpp") != 0)
        return false;
    const std::string guard = expected_guard(path);
    // Locate the first two directives; they must already form an
    // #ifndef/#define pair over one symbol or we refuse to guess.
    std::size_t ifndef_i = lines.size(), define_i = lines.size();
    std::string symbol;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string d = directive(lines[i]);
        if (d.empty())
            continue;
        if (ifndef_i == lines.size()) {
            if (d.rfind("#ifndef ", 0) != 0)
                return false;
            symbol = detail::trim(d.substr(8));
            ifndef_i = i;
        } else {
            if (d.rfind("#define ", 0) != 0 ||
                detail::trim(d.substr(8)) != symbol)
                return false;
            define_i = i;
            break;
        }
    }
    if (define_i == lines.size() || symbol.empty())
        return false;
    bool changed = false;
    if (symbol != guard) {
        lines[ifndef_i] = "#ifndef " + guard;
        lines[define_i] = "#define " + guard;
        changed = true;
    }
    // Re-annotate the closing #endif.
    for (std::size_t i = lines.size(); i > 0; --i) {
        const std::string& l = lines[i - 1];
        if (l.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        const std::string want = "#endif // " + guard;
        if (l.rfind("#endif", 0) == 0 && l != want) {
            lines[i - 1] = want;
            changed = true;
        }
        break;
    }
    return changed;
}

} // namespace

std::optional<std::string>
fix_content(const std::string& path, const std::string& content)
{
    std::vector<std::string> lines = detail::split_lines(content);
    bool changed = false;
    changed |= fix_header_guard(path, lines);
    changed |= fix_include_order(path, lines);
    if (!changed)
        return std::nullopt;
    std::string out;
    for (const std::string& l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

} // namespace imc::lint
