#include "internal.hpp"
#include "lint.hpp"

#include <fstream>
#include <sstream>

/**
 * @file
 * The incremental index cache: a line-oriented text serialization of
 * every FileIndex, keyed on (content hash, sibling-header hash). A
 * warm run re-lexes only files whose hashes changed and is guaranteed
 * to report byte-identical findings to a cold run — the cache stores
 * *everything* phase 2 consumes (facts, suppressions, per-file
 * diagnostics), never intermediate state.
 *
 * The cache is an optimization, never a source of truth: any parse
 * hiccup, version mismatch, or --allow set change discards it
 * wholesale and the run proceeds cold.
 */

namespace imc::lint::detail {

namespace {

constexpr const char* kMagic = "imc-lint-cache v2";

std::string
joined_rules(const Options& opts)
{
    if (opts.disabled_rules.empty())
        return "-";
    std::string out;
    for (const std::string& r : opts.disabled_rules) {
        if (!out.empty())
            out += ',';
        out += r;
    }
    return out;
}

} // namespace

std::map<std::string, FileIndex>
load_cache(const std::string& path, const Options& opts)
{
    std::map<std::string, FileIndex> cache;
    std::ifstream in(path);
    if (!in)
        return cache;
    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        return cache;
    if (!std::getline(in, line) ||
        line != "allow " + joined_rules(opts))
        return cache; // rule set changed: findings would differ

    FileIndex cur;
    bool open = false;
    auto fail = [&]() {
        cache.clear();
        return cache;
    };
    while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (tag == "file") {
            if (open)
                return fail();
            cur = FileIndex{};
            ss >> cur.path;
            if (cur.path.empty())
                return fail();
            cur.category = detail::categorize(cur.path);
            open = true;
        } else if (!open) {
            return fail();
        } else if (tag == "hash") {
            ss >> cur.content_hash >> cur.sibling_hash;
        } else if (tag == "inc") {
            IncludeRef ref;
            int angle = 0;
            ss >> ref.line >> angle >> ref.target;
            ref.angle = angle != 0;
            cur.includes.push_back(ref);
        } else if (tag == "uno") {
            std::string name;
            ss >> name;
            cur.unordered_names.insert(name);
        } else if (tag == "fp") {
            FaultProbe p;
            int lit = 0;
            ss >> p.line >> lit >> p.site;
            p.literal = lit != 0;
            cur.fault_probes.push_back(p);
        } else if (tag == "obs") {
            ObsUse u;
            ss >> u.line >> u.pattern;
            cur.obs_uses.push_back(u);
        } else if (tag == "freg" || tag == "oreg") {
            RegistryEntry e;
            ss >> e.line >> e.name;
            (tag == "freg" ? cur.fault_sites : cur.obs_names)
                .push_back(e);
        } else if (tag == "sup") {
            SuppressionInfo s;
            std::string rules;
            ss >> s.target_line >> rules;
            std::istringstream rs(rules);
            std::string r;
            while (std::getline(rs, r, ','))
                s.rules.push_back(r);
            cur.suppressions.push_back(std::move(s));
        } else if (tag == "diag") {
            Diagnostic d;
            d.path = cur.path;
            ss >> d.line >> d.rule;
            std::getline(ss, d.message);
            if (!d.message.empty() && d.message[0] == ' ')
                d.message.erase(0, 1);
            cur.diags.push_back(std::move(d));
        } else if (tag == "end") {
            cache[cur.path] = std::move(cur);
            open = false;
        } else if (!tag.empty()) {
            return fail(); // unknown tag: newer format
        }
    }
    if (open)
        return fail(); // truncated write
    return cache;
}

void
save_cache(const std::string& path,
           const std::vector<FileIndex>& index, const Options& opts)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return; // unwritable cache just means the next run is cold
    out << kMagic << "\n";
    out << "allow " << joined_rules(opts) << "\n";
    for (const FileIndex& idx : index) {
        out << "file " << idx.path << "\n";
        out << "hash " << idx.content_hash << " " << idx.sibling_hash
            << "\n";
        for (const IncludeRef& r : idx.includes)
            out << "inc " << r.line << " " << (r.angle ? 1 : 0)
                << " " << r.target << "\n";
        for (const std::string& n : idx.unordered_names)
            out << "uno " << n << "\n";
        for (const FaultProbe& p : idx.fault_probes)
            out << "fp " << p.line << " " << (p.literal ? 1 : 0)
                << " " << p.site << "\n";
        for (const ObsUse& u : idx.obs_uses)
            out << "obs " << u.line << " " << u.pattern << "\n";
        for (const RegistryEntry& e : idx.fault_sites)
            out << "freg " << e.line << " " << e.name << "\n";
        for (const RegistryEntry& e : idx.obs_names)
            out << "oreg " << e.line << " " << e.name << "\n";
        for (const SuppressionInfo& s : idx.suppressions) {
            out << "sup " << s.target_line << " ";
            for (std::size_t i = 0; i < s.rules.size(); ++i)
                out << (i ? "," : "") << s.rules[i];
            out << "\n";
        }
        for (const Diagnostic& d : idx.diags)
            out << "diag " << d.line << " " << d.rule << " "
                << d.message << "\n";
        out << "end\n";
    }
}

} // namespace imc::lint::detail
