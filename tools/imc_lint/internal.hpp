#ifndef IMC_TOOLS_IMC_LINT_INTERNAL_HPP
#define IMC_TOOLS_IMC_LINT_INTERNAL_HPP

/**
 * @file
 * Internal seams between the analyzer's translation units (driver,
 * rules, index cache, project passes). Nothing here is part of the
 * public lint.hpp surface.
 */

#include <map>
#include <string>
#include <vector>

#include "lint.hpp"

namespace imc::lint::detail {

// lint.cpp — classification, suppressions, file IO.
Category categorize(const std::string& path);
std::vector<std::string> split_lines(const std::string& content);
std::string trim(const std::string& s);

struct ParsedSuppressions {
    std::vector<SuppressionInfo> sups;
    std::vector<Diagnostic> meta; ///< lint-suppression findings
};
ParsedSuppressions parse_suppressions(const FileContext& ctx);
void apply_suppressions(const std::vector<SuppressionInfo>& sups,
                        std::vector<Diagnostic>& diags);
/** True when @p idx carries a suppression covering @p d. */
bool suppressed(const FileIndex& idx, const Diagnostic& d);
std::string read_file(const std::string& path);

// rules.cpp — token-stream extraction for the index.
std::vector<IncludeRef>
extract_includes(const std::vector<std::string>& lines);
std::vector<FaultProbe> extract_fault_probes(const LexResult& lex,
                                             const std::string& path);
std::vector<ObsUse> extract_obs_uses(const LexResult& lex,
                                     const std::string& path);
std::vector<RegistryEntry>
extract_registry_array(const LexResult& lex, const char* array_name);

// index.cpp — the incremental cache.
std::map<std::string, FileIndex> load_cache(const std::string& path,
                                            const Options& opts);
void save_cache(const std::string& path,
                const std::vector<FileIndex>& index,
                const Options& opts);

} // namespace imc::lint::detail

#endif // IMC_TOOLS_IMC_LINT_INTERNAL_HPP
