#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace imc::lint {

namespace {

bool
ident_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char operators we care to keep whole. "::" matters for
// qualifier analysis; "->" matters for member-access detection. The
// rest are folded greedily so they never split into misleading pairs.
const char* kTwoCharOps[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                             "!=", "&&", "||", "++", "--", "+=", "-=",
                             "*=", "/=", "|=", "&=", "^=", "%="};

} // namespace

LexResult
lex(const std::string& content)
{
    LexResult out;
    const std::size_t n = content.size();
    std::size_t i = 0;
    int line = 1;
    // Line of the most recent code token, to classify own-line
    // comments (nothing but whitespace before them on their line).
    int last_code_line = 0;

    auto advance = [&](std::size_t count) {
        for (std::size_t k = 0; k < count && i < n; ++k, ++i)
            if (content[i] == '\n')
                ++line;
    };

    while (i < n) {
        const char c = content[i];
        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }
        if (c == '\\' && i + 1 < n && content[i + 1] == '\n') {
            advance(2); // line continuation
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            const int start_line = line;
            std::size_t j = i + 2;
            while (j < n && content[j] != '\n')
                ++j;
            out.comments.push_back({content.substr(i + 2, j - i - 2),
                                    start_line,
                                    last_code_line != start_line});
            advance(j - i);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            const int start_line = line;
            std::size_t j = i + 2;
            while (j + 1 < n &&
                   !(content[j] == '*' && content[j + 1] == '/'))
                ++j;
            const std::size_t end = (j + 1 < n) ? j + 2 : n;
            out.comments.push_back({content.substr(i + 2, j - i - 2),
                                    start_line,
                                    last_code_line != start_line});
            advance(end - i);
            continue;
        }
        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
            std::size_t j = i + 2;
            while (j < n && content[j] != '(')
                ++j;
            const std::string delim =
                ")" + content.substr(i + 2, j - i - 2) + "\"";
            const std::size_t body = (j < n) ? j + 1 : n;
            const std::size_t close = content.find(delim, body);
            const std::size_t end =
                (close == std::string::npos) ? n : close + delim.size();
            out.tokens.push_back(
                {TokKind::String,
                 content.substr(body, (close == std::string::npos
                                           ? n
                                           : close) -
                                          body),
                 line});
            last_code_line = line;
            advance(end - i);
            continue;
        }
        // String literal.
        if (c == '"') {
            const int start_line = line;
            std::size_t j = i + 1;
            std::string text;
            while (j < n && content[j] != '"') {
                if (content[j] == '\\' && j + 1 < n) {
                    text += content[j];
                    text += content[j + 1];
                    j += 2;
                } else {
                    text += content[j];
                    ++j;
                }
            }
            out.tokens.push_back({TokKind::String, text, start_line});
            last_code_line = start_line;
            advance((j < n ? j + 1 : n) - i);
            continue;
        }
        // Character literal. Heuristic: only after non-identifier
        // context, so digit separators (1'000) never match; we keep
        // it simple because numbers consume their own separators.
        if (c == '\'') {
            const int start_line = line;
            std::size_t j = i + 1;
            while (j < n && content[j] != '\'') {
                if (content[j] == '\\' && j + 1 < n)
                    j += 2;
                else
                    ++j;
            }
            out.tokens.push_back(
                {TokKind::CharLit, content.substr(i + 1, j - i - 1),
                 start_line});
            last_code_line = start_line;
            advance((j < n ? j + 1 : n) - i);
            continue;
        }
        if (ident_start(c)) {
            std::size_t j = i + 1;
            while (j < n && ident_char(content[j]))
                ++j;
            out.tokens.push_back(
                {TokKind::Ident, content.substr(i, j - i), line});
            last_code_line = line;
            advance(j - i);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            while (j < n && (ident_char(content[j]) ||
                             content[j] == '\'' || content[j] == '.' ||
                             ((content[j] == '+' || content[j] == '-') &&
                              (content[j - 1] == 'e' ||
                               content[j - 1] == 'E' ||
                               content[j - 1] == 'p' ||
                               content[j - 1] == 'P'))))
                ++j;
            out.tokens.push_back(
                {TokKind::Number, content.substr(i, j - i), line});
            last_code_line = line;
            advance(j - i);
            continue;
        }
        // Punctuation: longest match among the known two-char ops.
        std::string text(1, c);
        if (i + 1 < n) {
            for (const char* op : kTwoCharOps) {
                if (content[i] == op[0] && content[i + 1] == op[1]) {
                    text = op;
                    break;
                }
            }
        }
        out.tokens.push_back({TokKind::Punct, text, line});
        last_code_line = line;
        advance(text.size());
    }
    return out;
}

} // namespace imc::lint
