#ifndef IMC_TOOLS_IMC_LINT_LEXER_HPP
#define IMC_TOOLS_IMC_LINT_LEXER_HPP

/**
 * @file
 * A minimal C++ tokenizer for imc-lint.
 *
 * This is deliberately NOT a compiler front end: it produces a flat
 * token stream good enough to find banned calls, throw sites, and
 * container iteration, while stripping the two things that make
 * regex-grep lints lie — comments and string literals. Comments are
 * kept on the side (with their line numbers) because suppression
 * directives live in them.
 */

#include <string>
#include <vector>

namespace imc::lint {

enum class TokKind {
    Ident,   ///< identifier or keyword
    Number,  ///< numeric literal
    String,  ///< string literal (text WITHOUT quotes)
    CharLit, ///< character literal
    Punct,   ///< operator / punctuation, longest-match (e.g. "::")
};

struct Token {
    TokKind kind;
    std::string text;
    int line; ///< 1-based
};

/** One comment, attached to the line it starts on. */
struct Comment {
    std::string text; ///< body without the // or markers
    int line;         ///< 1-based line the comment starts on
    bool own_line;    ///< no code precedes it on its line
};

/** Lex result: code tokens plus side-channel comments. */
struct LexResult {
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/**
 * Tokenize @p content. Never fails: unterminated literals are closed
 * at end of file, unknown bytes become single-char Punct tokens.
 * Handles //, block comments, raw strings, and line continuations.
 */
LexResult lex(const std::string& content);

} // namespace imc::lint

#endif // IMC_TOOLS_IMC_LINT_LEXER_HPP
