#include "internal.hpp"
#include "lint.hpp"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>

/**
 * @file
 * The driver core: file classification, suppression handling, the
 * deterministic tree walk, and phase 1 (index_content). Rules live in
 * rules.cpp, the incremental cache in index.cpp, and the phase-2
 * project passes in project.cpp.
 */

namespace imc::lint {

namespace {

namespace fs = std::filesystem;

bool
lintable(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" ||
           ext == ".cc";
}

bool
skipped_dir(const std::string& name)
{
    return name == "build" || name == ".git" ||
           name == "lint_fixtures" || name == "CMakeFiles";
}

void
sort_diags(std::vector<Diagnostic>& diags)
{
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

} // namespace

namespace detail {

Category
categorize(const std::string& path)
{
    if (path.rfind("bench/", 0) == 0)
        return Category::Bench;
    if (path.rfind("examples/", 0) == 0)
        return Category::Example;
    if (path.rfind("tests/", 0) == 0)
        return Category::Test;
    if (path.rfind("tools/", 0) == 0)
        return Category::Tool;
    // src/ and anything unrecognized get the strictest treatment.
    return Category::Library;
}

std::vector<std::string>
split_lines(const std::string& content)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : content) {
        if (c == '\n') {
            if (!cur.empty() && cur.back() == '\r')
                cur.pop_back();
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::string
trim(const std::string& s)
{
    const std::size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    const std::size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

/**
 * Parse suppressions out of the comment stream. A trailing comment
 * covers its own line; a comment-only line covers the next line that
 * carries code (so multi-line justification comments chain
 * naturally). Malformed directives become lint-suppression
 * diagnostics instead of silently suppressing nothing.
 */
ParsedSuppressions
parse_suppressions(const FileContext& ctx)
{
    ParsedSuppressions out;
    // Lines that carry at least one code token, for own-line
    // comment target resolution.
    std::vector<int> code_lines;
    code_lines.reserve(ctx.lex.tokens.size());
    for (const Token& t : ctx.lex.tokens)
        if (code_lines.empty() || code_lines.back() != t.line)
            code_lines.push_back(t.line);

    for (const Comment& c : ctx.lex.comments) {
        const std::size_t pos = c.text.find("imc-lint:");
        if (pos == std::string::npos)
            continue;
        auto malformed = [&](const std::string& why) {
            out.meta.push_back({"lint-suppression", ctx.path, c.line,
                                "malformed suppression: " + why});
        };
        const std::string rest = trim(c.text.substr(pos + 9));
        if (rest.rfind("allow", 0) != 0) {
            malformed("expected 'allow(<rule>): <justification>'");
            continue;
        }
        const std::size_t open = rest.find('(');
        const std::size_t close = rest.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open) {
            malformed("expected 'allow(<rule>): <justification>'");
            continue;
        }
        SuppressionInfo sup;
        std::stringstream list(rest.substr(open + 1, close - open - 1));
        std::string rule;
        bool rules_ok = true;
        while (std::getline(list, rule, ',')) {
            rule = trim(rule);
            if (rule_descriptions().count(rule) == 0) {
                malformed("unknown rule '" + rule + "'");
                rules_ok = false;
                break;
            }
            sup.rules.push_back(rule);
        }
        if (!rules_ok)
            continue;
        if (sup.rules.empty()) {
            malformed("empty rule list");
            continue;
        }
        // Justification: non-empty text after "):".
        const std::string after = trim(rest.substr(close + 1));
        if (after.empty() || after[0] != ':' ||
            trim(after.substr(1)).empty()) {
            malformed("missing justification after allow(" +
                      sup.rules.front() +
                      "): every suppression must say WHY the "
                      "violation is acceptable here");
            continue;
        }
        if (c.own_line) {
            // Covers the next code-bearing line.
            const auto it = std::upper_bound(code_lines.begin(),
                                             code_lines.end(), c.line);
            sup.target_line = it == code_lines.end() ? c.line : *it;
        } else {
            sup.target_line = c.line;
        }
        out.sups.push_back(std::move(sup));
    }
    return out;
}

void
apply_suppressions(const std::vector<SuppressionInfo>& sups,
                   std::vector<Diagnostic>& diags)
{
    diags.erase(
        std::remove_if(
            diags.begin(), diags.end(),
            [&](const Diagnostic& d) {
                if (d.rule == "lint-suppression")
                    return false; // the audit trail itself
                for (const SuppressionInfo& s : sups) {
                    if (d.line != s.target_line)
                        continue;
                    if (std::find(s.rules.begin(), s.rules.end(),
                                  d.rule) != s.rules.end())
                        return true;
                }
                return false;
            }),
        diags.end());
}

bool
suppressed(const FileIndex& idx, const Diagnostic& d)
{
    if (d.rule == "lint-suppression")
        return false;
    for (const SuppressionInfo& s : idx.suppressions) {
        if (d.line != s.target_line)
            continue;
        if (std::find(s.rules.begin(), s.rules.end(), d.rule) !=
            s.rules.end())
            return true;
    }
    return false;
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace detail

std::uint64_t
content_hash(const std::string& content)
{
    // FNV-1a 64: tiny, stable across platforms, and collisions only
    // cost a stale cache entry, never a wrong finding (the cache is
    // re-validated against the sibling hash too).
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : content) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

FileIndex
index_content(const std::string& path, const std::string& content,
              const std::string& sibling_header_content,
              const Options& opts)
{
    FileContext ctx;
    ctx.path = path;
    ctx.category = detail::categorize(path);
    ctx.lines = detail::split_lines(content);
    ctx.lex = lex(content);
    if (!sibling_header_content.empty())
        ctx.extra_unordered_names =
            unordered_decl_names_in(sibling_header_content);

    FileIndex idx;
    idx.path = path;
    idx.category = ctx.category;
    idx.content_hash = content_hash(content);
    idx.sibling_hash = sibling_header_content.empty()
                           ? 0
                           : content_hash(sibling_header_content);
    idx.includes = detail::extract_includes(ctx.lines);
    idx.unordered_names = unordered_decl_names_in(content);
    idx.fault_probes = detail::extract_fault_probes(ctx.lex, path);
    idx.obs_uses = detail::extract_obs_uses(ctx.lex, path);
    if (path == "src/common/fault.hpp")
        idx.fault_sites =
            detail::extract_registry_array(ctx.lex, "kFaultSites");
    if (path == "src/common/obs.hpp")
        idx.obs_names =
            detail::extract_registry_array(ctx.lex, "kObsNames");

    std::vector<Diagnostic> diags = run_rules(ctx, opts);
    detail::ParsedSuppressions ps = detail::parse_suppressions(ctx);
    detail::apply_suppressions(ps.sups, diags);
    diags.insert(diags.end(), ps.meta.begin(), ps.meta.end());
    sort_diags(diags);
    idx.suppressions = std::move(ps.sups);
    idx.diags = std::move(diags);
    return idx;
}

std::vector<Diagnostic>
lint_content(const std::string& path, const std::string& content,
             const std::string& sibling_header_content,
             const Options& opts)
{
    return index_content(path, content, sibling_header_content, opts)
        .diags;
}

std::vector<Diagnostic>
lint_content(const std::string& path, const std::string& content,
             const Options& opts)
{
    return lint_content(path, content, std::string(), opts);
}

std::vector<std::string>
lintable_files(const std::string& root_dir,
               const std::vector<std::string>& roots)
{
    const fs::path root = root_dir.empty() ? fs::path(".")
                                           : fs::path(root_dir);
    std::vector<fs::path> files;
    for (const std::string& r : roots) {
        fs::path p = fs::path(r).is_absolute() ? fs::path(r)
                                               : root / r;
        if (fs::is_regular_file(p)) {
            files.push_back(p); // explicit files always lint
            continue;
        }
        if (!fs::is_directory(p))
            continue;
        fs::recursive_directory_iterator it(p), end;
        for (; it != end; ++it) {
            if (it->is_directory() &&
                skipped_dir(it->path().filename().string())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && lintable(it->path()))
                files.push_back(it->path());
        }
    }
    std::vector<std::string> rel;
    rel.reserve(files.size());
    for (const fs::path& f : files)
        rel.push_back(fs::relative(f, root).generic_string());
    // Deterministic report order regardless of directory layout.
    std::sort(rel.begin(), rel.end());
    rel.erase(std::unique(rel.begin(), rel.end()), rel.end());
    return rel;
}

} // namespace imc::lint
