#ifndef IMC_TOOLS_IMC_LINT_LINT_HPP
#define IMC_TOOLS_IMC_LINT_LINT_HPP

/**
 * @file
 * imc-lint — the project-invariant static-analysis pass.
 *
 * The compiler checks types; this tool checks the *project's*
 * contracts, the ones PR review used to check by convention:
 *
 *  - determinism-rand        no wall-clock / libc randomness in code
 *                            that can feed recorded figures
 *  - determinism-unordered-iter  no iteration over unordered
 *                            containers (order leaks into output)
 *  - banned-number-parse     no atoi/atof/strtol-family parsing
 *                            (use the strict Cli / serialize paths)
 *  - banned-printf           no printf-family output in library code
 *  - banned-new-delete       no naked new/delete
 *  - config-error-context    throw ConfigError must embed the
 *                            offending flag or value
 *  - header-guard            guards named IMC_<PATH>_HPP, closing
 *                            #endif annotated
 *  - include-order           own header, then <system>, then
 *                            "project" — no interleaving
 *  - obs-gate                obs recording only via IMC_OBS_* macros
 *                            (keeps IMC_OBS_DISABLED zero-cost)
 *  - fault-gate              fault probes only via IMC_FAULT_*
 *                            macros (keeps IMC_FAULT_DISABLED
 *                            zero-cost)
 *  - fault-site              IMC_FAULT_PROBE sites must be string
 *                            literals from the registered site table
 *                            (src/common/fault.hpp) so chaos
 *                            schedules never silently miss a probe
 *  - lint-suppression        suppressions must parse, name a known
 *                            rule, and carry a justification
 *
 * A violation is silenced with a suppression comment on the same
 * line or on a comment-only line directly above, and MUST carry a
 * justification after the closing parenthesis:
 *
 *     // imc-lint: allow(banned-printf): snprintf is the checked
 *     // float formatter; output goes to a sized local buffer.
 *
 * Unjustified or unknown-rule suppressions are themselves
 * diagnostics, so the suppression surface stays auditable.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace imc::lint {

/** Where a file sits in the tree; decides which rules apply. */
enum class Category {
    Library, ///< src/ — strictest: all rules
    Bench,   ///< bench/ — figure harnesses (may print)
    Example, ///< examples/ — user-facing mains (may print)
    Test,    ///< tests/ — may exercise banned APIs deliberately
    Tool,    ///< tools/ — the lint tool itself (dogfooded)
};

/** One finding. */
struct Diagnostic {
    std::string rule;
    std::string path; ///< root-relative, '/' separators
    int line = 0;
    std::string message;
};

/** Everything a rule sees about one translation unit. */
struct FileContext {
    std::string path; ///< root-relative, '/' separators
    Category category = Category::Library;
    std::vector<std::string> lines; ///< raw lines, 0-based storage
    LexResult lex;
    /**
     * Names of unordered_map/unordered_set variables declared in the
     * sibling header (same stem), so a .cpp iterating a member the
     * .hpp declares is still caught.
     */
    std::set<std::string> extra_unordered_names;
};

struct Options {
    /** Rules disabled wholesale (e.g. from --allow on the CLI). */
    std::set<std::string> disabled_rules;
};

/** Rule id -> one-line description, for --list-rules and tests. */
const std::map<std::string, std::string>& rule_descriptions();

/**
 * Lint one file's content. @p path must be root-relative with '/'
 * separators; it decides the category and the header-guard name.
 * Suppressions have already been applied to the result.
 */
std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content,
                                     const Options& opts = {});

/** lint_content plus sibling-header unordered-name seeding. */
std::vector<Diagnostic>
lint_content(const std::string& path, const std::string& content,
             const std::string& sibling_header_content,
             const Options& opts);

/**
 * Walk @p roots (files or directories) under @p root_dir, lint every
 * .hpp/.cpp/.h/.cc file, and return all diagnostics sorted by path
 * then line. Directories named build, .git, or lint_fixtures are
 * skipped (fixtures contain violations on purpose); explicitly
 * listed files are always linted.
 */
std::vector<Diagnostic>
lint_tree(const std::string& root_dir,
          const std::vector<std::string>& roots,
          const Options& opts = {});

// Internal entry point shared by lint_content and the tests: run the
// rules without applying suppressions.
std::vector<Diagnostic> run_rules(const FileContext& ctx,
                                  const Options& opts);

/**
 * Names of variables declared with an unordered_map/unordered_set
 * type in @p content — used to seed a .cpp's context from its
 * sibling header so member iteration is caught across the pair.
 */
std::set<std::string>
unordered_decl_names_in(const std::string& content);

} // namespace imc::lint

#endif // IMC_TOOLS_IMC_LINT_LINT_HPP
