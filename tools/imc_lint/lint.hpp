#ifndef IMC_TOOLS_IMC_LINT_LINT_HPP
#define IMC_TOOLS_IMC_LINT_LINT_HPP

/**
 * @file
 * imc-lint — the project-invariant static analyzer.
 *
 * The compiler checks types; this tool checks the *project's*
 * contracts, the ones PR review used to check by convention. Since
 * v2 it is a two-phase, whole-tree analyzer rather than a per-file
 * rule runner:
 *
 *   phase 1  every file under the linted roots is lexed once into a
 *            FileIndex — include directives, unordered-container
 *            declarations, IMC_FAULT_PROBE site literals, IMC_OBS_*
 *            name patterns, registry arrays, suppression comments,
 *            and the per-file rule findings. Indices are cached on a
 *            content hash (--cache), so a warm run re-lexes only
 *            what changed and returns byte-identical findings.
 *
 *   phase 2  cross-file passes run over the merged index: the
 *            project include graph (cycles + the layering policy in
 *            tools/imc_lint/layers.txt), and used⇔registered
 *            cross-checks of fault-probe sites against
 *            src/common/fault.hpp's kFaultSites and of obs metric
 *            names against src/common/obs.hpp's kObsNames.
 *
 * Per-file rules:
 *
 *  - determinism-rand        no wall-clock / libc randomness in code
 *                            that can feed recorded figures
 *  - determinism-taint       values sourced from unordered-container
 *                            iteration, pointer-to-integer casts,
 *                            'this' hashing, or thread ids must not
 *                            flow into digests, serialized output,
 *                            LatencyRecorder, or RNG fork names
 *  - banned-number-parse     no atoi/atof/strtol-family parsing
 *                            (use the strict Cli / serialize paths)
 *  - banned-printf           no printf-family output in library code
 *  - banned-new-delete       no naked new/delete
 *  - config-error-context    throw ConfigError must embed the
 *                            offending flag or value
 *  - header-guard            guards named IMC_<PATH>_HPP, closing
 *                            #endif annotated
 *  - include-order           own header, then <system>, then
 *                            "project" — no interleaving
 *  - obs-gate                obs recording only via IMC_OBS_* macros
 *                            (keeps IMC_OBS_DISABLED zero-cost)
 *  - fault-gate              fault probes only via IMC_FAULT_*
 *                            macros (keeps IMC_FAULT_DISABLED
 *                            zero-cost)
 *  - fault-site              IMC_FAULT_PROBE sites must be string
 *                            literals (phase 1) drawn from the
 *                            registered site table (phase 2)
 *  - lint-suppression        suppressions must parse, name a known
 *                            rule, and carry a justification
 *
 * Cross-file rules (phase 2):
 *
 *  - include-cycle           the project include graph must be a DAG
 *  - layer-violation         include edges must respect the layering
 *                            policy (layers.txt); tools/ may reach
 *                            src/ only through declared public
 *                            headers
 *  - layer-policy            layers.txt itself must parse
 *  - fault-site-dead         every registered fault site must be
 *                            probed somewhere
 *  - obs-name                every IMC_OBS_* name in src/ must be
 *                            registered in kObsNames
 *  - obs-name-dead           every registered obs name must be
 *                            recorded somewhere
 *
 * A violation is silenced with a suppression comment on the same
 * line or on a comment-only line directly above, and MUST carry a
 * justification after the closing parenthesis:
 *
 *     // imc-lint: allow(banned-printf): snprintf is the checked
 *     // float formatter; output goes to a sized local buffer.
 *
 * Unjustified or unknown-rule suppressions are themselves
 * diagnostics, so the suppression surface stays auditable.
 * Suppressions apply to cross-file findings too (at the line the
 * finding is reported on — the #include edge, the probe, or the
 * registry entry).
 */

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.hpp"

namespace imc::lint {

/** Where a file sits in the tree; decides which rules apply. */
enum class Category {
    Library, ///< src/ — strictest: all rules
    Bench,   ///< bench/ — figure harnesses (may print)
    Example, ///< examples/ — user-facing mains (may print)
    Test,    ///< tests/ — may exercise banned APIs deliberately
    Tool,    ///< tools/ — the lint tool itself (dogfooded)
};

/** One finding. */
struct Diagnostic {
    std::string rule;
    std::string path; ///< root-relative, '/' separators
    int line = 0;
    std::string message;

    bool operator==(const Diagnostic& o) const
    {
        return rule == o.rule && path == o.path && line == o.line &&
               message == o.message;
    }
};

/** Everything a rule sees about one translation unit. */
struct FileContext {
    std::string path; ///< root-relative, '/' separators
    Category category = Category::Library;
    std::vector<std::string> lines; ///< raw lines, 0-based storage
    LexResult lex;
    /**
     * Names of unordered_map/unordered_set variables declared in the
     * sibling header (same stem), so a .cpp iterating a member the
     * .hpp declares is still caught.
     */
    std::set<std::string> extra_unordered_names;
};

struct Options {
    /** Rules disabled wholesale (e.g. from --allow on the CLI). */
    std::set<std::string> disabled_rules;
};

// --- Phase 1: the per-file index --------------------------------------

/** One #include directive. */
struct IncludeRef {
    int line = 0;
    std::string target; ///< as written between the delimiters
    bool angle = false; ///< <system> vs "project"
};

/** One IMC_FAULT_PROBE site argument. */
struct FaultProbe {
    int line = 0;
    std::string site; ///< empty when not a string literal
    bool literal = false;
};

/** One IMC_OBS_* name argument, normalized to a pattern. */
struct ObsUse {
    int line = 0;
    /**
     * The literal fragments of the name expression joined with one
     * '*' per dynamic fragment: a plain literal indexes as itself,
     * `"fault.injected." + site` as "fault.injected.*", and a fully
     * dynamic name as "*".
     */
    std::string pattern;
};

/** One entry of a kFaultSites / kObsNames registry array. */
struct RegistryEntry {
    int line = 0;
    std::string name;
};

/** One parsed, valid allow(<rules>) suppression. */
struct SuppressionInfo {
    std::vector<std::string> rules;
    int target_line = 0;
};

/** The phase-1 product for one file. */
struct FileIndex {
    std::string path;
    Category category = Category::Library;
    std::uint64_t content_hash = 0;
    std::uint64_t sibling_hash = 0; ///< 0 when no sibling header
    std::vector<IncludeRef> includes;
    /** Unordered-container names declared here (exported to the
     * sibling .cpp's taint pass). */
    std::set<std::string> unordered_names;
    std::vector<FaultProbe> fault_probes;
    std::vector<ObsUse> obs_uses;
    /** kFaultSites entries (populated only for src/common/fault.hpp). */
    std::vector<RegistryEntry> fault_sites;
    /** kObsNames entries (populated only for src/common/obs.hpp). */
    std::vector<RegistryEntry> obs_names;
    std::vector<SuppressionInfo> suppressions;
    /** Per-file findings, suppressions already applied (including
     * the lint-suppression meta findings). */
    std::vector<Diagnostic> diags;
};

/** FNV-1a 64 of @p content — the incremental-cache key. */
std::uint64_t content_hash(const std::string& content);

/**
 * Phase 1 for one file: lex, run the per-file rules, apply
 * suppressions, and extract every cross-file fact.
 */
FileIndex index_content(const std::string& path,
                        const std::string& content,
                        const std::string& sibling_header_content,
                        const Options& opts);

// --- Phase 2: the project analysis ------------------------------------

/** Parsed layering policy (tools/imc_lint/layers.txt). */
struct LayerPolicy {
    struct Layer {
        std::string name;
        std::string prefix; ///< path prefix, e.g. "src/common/"
    };
    std::vector<Layer> layers; ///< declaration order
    /** layer -> layers it may include (itself is always allowed). */
    std::map<std::string, std::set<std::string>> allowed;
    /** src/ headers tools/ may include. */
    std::set<std::string> public_headers;
    /** Parse errors (rule layer-policy). */
    std::vector<Diagnostic> errors;
};

/** Parse @p text; @p path is used for error diagnostics. */
LayerPolicy parse_layer_policy(const std::string& text,
                               const std::string& path);

struct ProjectOptions {
    Options rules;
    /**
     * Run the registered-but-unused directions (fault-site-dead,
     * obs-name-dead). Only meaningful when the whole tree is being
     * analyzed; the CLI disables them for explicit PATH subsets.
     */
    bool dead_checks = true;
    /** Layer policy text; empty disables the layering pass. */
    std::string layers_text;
    /** Path the policy was read from (for diagnostics). */
    std::string layers_path = "tools/imc_lint/layers.txt";
};

struct ProjectStats {
    std::size_t files = 0;
    std::size_t files_reused = 0; ///< indices served from the cache
    std::size_t include_edges = 0;
    std::size_t diagnostics = 0;
    std::size_t suppressions = 0;
    /** Malformed/unjustified suppressions (lint-suppression count). */
    std::size_t suppressed_without_reason = 0;
};

struct ProjectResult {
    /** All findings, sorted by path, then line, then rule. */
    std::vector<Diagnostic> diags;
    ProjectStats stats;
    /** The merged phase-1 index, sorted by path. */
    std::vector<FileIndex> index;
};

/**
 * Analyze an in-memory project given as (root-relative path,
 * content) pairs — the unit-test entry point. Registry arrays are
 * read from "src/common/fault.hpp" / "src/common/obs.hpp" when those
 * paths are present; the layer policy comes from @p opts.
 */
ProjectResult
analyze_files(const std::vector<std::pair<std::string, std::string>>& files,
              const ProjectOptions& opts);

/**
 * Analyze the on-disk tree: walk @p roots (files or directories)
 * under @p root_dir exactly like lint_tree, load the layer policy
 * and the registry headers from the tree, and run both phases. When
 * @p cache_path is non-empty, per-file indices are reused from the
 * cache file when the content hash (and the sibling header's hash)
 * match, and the cache is rewritten afterwards; a warm run returns
 * findings byte-identical to a cold one.
 */
ProjectResult analyze_tree(const std::string& root_dir,
                           const std::vector<std::string>& roots,
                           const ProjectOptions& opts,
                           const std::string& cache_path = "");

/** The walk behind analyze_tree: root-relative lintable files. */
std::vector<std::string>
lintable_files(const std::string& root_dir,
               const std::vector<std::string>& roots);

// --- Output -----------------------------------------------------------

/** SARIF 2.1.0 log of @p r (GitHub code-scanning ingestible). */
void write_sarif(std::ostream& os, const ProjectResult& r);

/** The project include graph as GraphViz DOT, layers as clusters. */
void write_include_dot(std::ostream& os, const ProjectResult& r);

/** Stable "key value" lines (the CI --stats contract). */
void write_stats(std::ostream& os, const ProjectStats& s);

// --- Fixing -----------------------------------------------------------

/**
 * Mechanically fix the include-order and header-guard findings in
 * @p content. Returns the rewritten content, or std::nullopt when
 * nothing needed fixing. Idempotent: fix_content(fix_content(x)) is
 * always nullopt. Opt-in via the CLI --fix flag; never run in CI.
 */
std::optional<std::string> fix_content(const std::string& path,
                                       const std::string& content);

// --- Compatibility entry points ---------------------------------------

/** Rule id -> one-line description, for --list-rules and tests. */
const std::map<std::string, std::string>& rule_descriptions();

/**
 * Lint one file's content (phase 1 only). @p path must be
 * root-relative with '/' separators; it decides the category and the
 * header-guard name. Suppressions have already been applied.
 */
std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content,
                                     const Options& opts = {});

/** lint_content plus sibling-header unordered-name seeding. */
std::vector<Diagnostic>
lint_content(const std::string& path, const std::string& content,
             const std::string& sibling_header_content,
             const Options& opts);

// Internal entry point shared by lint_content and the tests: run the
// per-file rules without applying suppressions.
std::vector<Diagnostic> run_rules(const FileContext& ctx,
                                  const Options& opts);

/**
 * Names of variables declared with an unordered_map/unordered_set
 * type in @p content — used to seed a .cpp's context from its
 * sibling header so member iteration is caught across the pair.
 */
std::set<std::string>
unordered_decl_names_in(const std::string& content);

} // namespace imc::lint

#endif // IMC_TOOLS_IMC_LINT_LINT_HPP
