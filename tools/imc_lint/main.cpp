/**
 * @file
 * imc_lint CLI.
 *
 *   imc_lint [--root DIR] [--allow RULE]... [PATH]...
 *
 * PATHs (files or directories, relative to --root) default to the
 * four linted trees: src examples bench tests tools. Exit status is
 * 0 when clean, 1 when diagnostics were emitted, 2 on usage errors —
 * so the ctest / CI wiring is a bare invocation.
 */

#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int
usage(std::ostream& os, int code)
{
    os << "usage: imc_lint [--root DIR] [--allow RULE]... "
          "[--list-rules] [PATH]...\n"
          "  --root DIR    resolve PATHs and report paths relative "
          "to DIR (default .)\n"
          "  --allow RULE  disable RULE everywhere (prefer inline "
          "justified suppressions)\n"
          "  --list-rules  print rule ids and one-line "
          "descriptions\n";
    return code;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string root = ".";
    imc::lint::Options opts;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--list-rules") {
            for (const auto& [rule, desc] :
                 imc::lint::rule_descriptions())
                std::cout << rule << ": " << desc << "\n";
            return 0;
        }
        if (arg == "--root") {
            if (++i >= argc)
                return usage(std::cerr, 2);
            root = argv[i];
        } else if (arg == "--allow") {
            if (++i >= argc)
                return usage(std::cerr, 2);
            if (imc::lint::rule_descriptions().count(argv[i]) == 0) {
                std::cerr << "imc_lint: unknown rule '" << argv[i]
                          << "' (try --list-rules)\n";
                return 2;
            }
            opts.disabled_rules.insert(argv[i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "imc_lint: unknown option '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "examples", "bench", "tests", "tools"};

    const std::vector<imc::lint::Diagnostic> diags =
        imc::lint::lint_tree(root, paths, opts);
    for (const auto& d : diags)
        std::cout << d.path << ":" << d.line << ": [" << d.rule
                  << "] " << d.message << "\n";
    std::cerr << "imc_lint: " << diags.size() << " diagnostic"
              << (diags.size() == 1 ? "" : "s") << "\n";
    return diags.empty() ? 0 : 1;
}
