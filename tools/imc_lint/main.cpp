/**
 * @file
 * imc_lint CLI.
 *
 *   imc_lint [--root DIR] [--allow RULE]... [--sarif FILE]
 *            [--dot FILE] [--cache FILE] [--stats] [--fix]
 *            [--list-rules] [PATH]...
 *
 * PATHs (files or directories, relative to --root) default to the
 * five linted trees: src examples bench tests tools. The
 * registered-but-unused passes (fault-site-dead, obs-name-dead) run
 * only on that default whole-tree scope — a single-file run cannot
 * know a site is probed elsewhere. Exit status is 0 when clean, 1
 * when diagnostics were emitted, 2 on usage errors — so the ctest /
 * CI wiring is a bare invocation.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int
usage(std::ostream& os, int code)
{
    os << "usage: imc_lint [--root DIR] [--allow RULE]... "
          "[--sarif FILE] [--dot FILE]\n"
          "                [--cache FILE] [--stats] [--fix] "
          "[--list-rules] [PATH]...\n"
          "  --root DIR    resolve PATHs and report paths relative "
          "to DIR (default .)\n"
          "  --allow RULE  disable RULE everywhere (prefer inline "
          "justified suppressions)\n"
          "  --sarif FILE  also write the findings as SARIF 2.1.0\n"
          "  --dot FILE    also write the project include graph as "
          "GraphViz DOT\n"
          "  --cache FILE  reuse / rewrite the incremental index "
          "cache at FILE\n"
          "  --stats       print analyzer statistics to stdout\n"
          "  --fix         rewrite include-order / header-guard "
          "findings in place\n"
          "                (opt-in; never run in CI)\n"
          "  --list-rules  print rule ids and one-line "
          "descriptions\n";
    return code;
}

std::string
read_all(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::string out((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string root = ".";
    std::string sarif_path, dot_path, cache_path;
    bool stats = false, fix = false;
    imc::lint::ProjectOptions opts;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--list-rules") {
            for (const auto& [rule, desc] :
                 imc::lint::rule_descriptions())
                std::cout << rule << ": " << desc << "\n";
            return 0;
        }
        auto value = [&](std::string& into) {
            if (++i >= argc)
                return false;
            into = argv[i];
            return true;
        };
        if (arg == "--root") {
            if (!value(root))
                return usage(std::cerr, 2);
        } else if (arg == "--sarif") {
            if (!value(sarif_path))
                return usage(std::cerr, 2);
        } else if (arg == "--dot") {
            if (!value(dot_path))
                return usage(std::cerr, 2);
        } else if (arg == "--cache") {
            if (!value(cache_path))
                return usage(std::cerr, 2);
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--fix") {
            fix = true;
        } else if (arg == "--allow") {
            if (++i >= argc)
                return usage(std::cerr, 2);
            if (imc::lint::rule_descriptions().count(argv[i]) == 0) {
                std::cerr << "imc_lint: unknown rule '" << argv[i]
                          << "' (try --list-rules)\n";
                return 2;
            }
            opts.rules.disabled_rules.insert(argv[i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "imc_lint: unknown option '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        } else {
            paths.push_back(arg);
        }
    }
    // Dead-site detection needs the whole tree in view: an explicit
    // PATH subset would report every site unprobed.
    opts.dead_checks = paths.empty();
    if (paths.empty())
        paths = {"src", "examples", "bench", "tests", "tools"};

    if (fix) {
        std::size_t fixed = 0;
        for (const std::string& rel :
             imc::lint::lintable_files(root, paths)) {
            const std::string full = root + "/" + rel;
            const auto rewritten =
                imc::lint::fix_content(rel, read_all(full));
            if (!rewritten)
                continue;
            std::ofstream out(full, std::ios::binary |
                                        std::ios::trunc);
            out << *rewritten;
            std::cout << "fixed " << rel << "\n";
            ++fixed;
        }
        std::cerr << "imc_lint: rewrote " << fixed << " file"
                  << (fixed == 1 ? "" : "s") << "\n";
    }

    const imc::lint::ProjectResult result =
        imc::lint::analyze_tree(root, paths, opts, cache_path);
    for (const auto& d : result.diags)
        std::cout << d.path << ":" << d.line << ": [" << d.rule
                  << "] " << d.message << "\n";
    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path, std::ios::trunc);
        imc::lint::write_sarif(out, result);
    }
    if (!dot_path.empty()) {
        std::ofstream out(dot_path, std::ios::trunc);
        imc::lint::write_include_dot(out, result);
    }
    if (stats)
        imc::lint::write_stats(std::cout, result.stats);
    std::cerr << "imc_lint: " << result.diags.size()
              << " diagnostic"
              << (result.diags.size() == 1 ? "" : "s") << " across "
              << result.stats.files << " files ("
              << result.stats.files_reused << " cached)\n";
    return result.diags.empty() ? 0 : 1;
}
