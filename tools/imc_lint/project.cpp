#include "internal.hpp"
#include "lint.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <ostream>
#include <sstream>

/**
 * @file
 * Phase 2: the cross-file passes over the merged index — the project
 * include graph (cycles + the layering policy), the fault-site and
 * obs-name used⇔registered cross-checks — plus the SARIF / DOT /
 * stats writers and the analyze_files / analyze_tree entry points.
 */

namespace imc::lint {

namespace {

namespace fs = std::filesystem;

// --- Layer policy -----------------------------------------------------

/** Longest-prefix layer of @p path, or "" when unlayered. */
std::string
layer_of(const LayerPolicy& policy, const std::string& path)
{
    std::string best;
    std::size_t best_len = 0;
    for (const LayerPolicy::Layer& l : policy.layers) {
        if (path.rfind(l.prefix, 0) == 0 &&
            l.prefix.size() > best_len) {
            best = l.name;
            best_len = l.prefix.size();
        }
    }
    return best;
}

// --- Include resolution -----------------------------------------------

/**
 * Resolve a quoted include against the indexed file set. Candidates
 * mirror the build's include dirs: the including file's directory,
 * then src/, bench/, tools/imc_lint/, and the tree root. Unresolved
 * targets (third-party or generated headers) produce no edge.
 */
std::string
resolve_include(const std::string& from, const IncludeRef& ref,
                const std::set<std::string>& paths)
{
    if (ref.angle)
        return "";
    std::vector<std::string> cands;
    const std::size_t slash = from.rfind('/');
    if (slash != std::string::npos)
        cands.push_back(from.substr(0, slash + 1) + ref.target);
    cands.push_back("src/" + ref.target);
    cands.push_back("bench/" + ref.target);
    cands.push_back("tools/imc_lint/" + ref.target);
    cands.push_back(ref.target);
    for (const std::string& c : cands)
        if (paths.count(c) > 0)
            return c;
    return "";
}

struct Edge {
    std::string from;
    std::string to;
    int line = 0;
};

std::vector<Edge>
resolved_edges(const std::vector<FileIndex>& index)
{
    std::set<std::string> paths;
    for (const FileIndex& idx : index)
        paths.insert(idx.path);
    std::vector<Edge> edges;
    for (const FileIndex& idx : index)
        for (const IncludeRef& ref : idx.includes) {
            const std::string to =
                resolve_include(idx.path, ref, paths);
            if (!to.empty() && to != idx.path)
                edges.push_back({idx.path, to, ref.line});
        }
    return edges;
}

// --- Cycle detection --------------------------------------------------

class CycleFinder {
  public:
    CycleFinder(const std::vector<Edge>& edges,
                std::vector<Diagnostic>& out)
        : out_(out)
    {
        for (const Edge& e : edges)
            adj_[e.from].push_back(&e);
        for (auto& [from, list] : adj_)
            std::sort(list.begin(), list.end(),
                      [](const Edge* a, const Edge* b) {
                          if (a->to != b->to)
                              return a->to < b->to;
                          return a->line < b->line;
                      });
    }

    void run()
    {
        for (const auto& [node, _] : adj_)
            if (color_.count(node) == 0)
                dfs(node);
    }

  private:
    void dfs(const std::string& u)
    {
        color_[u] = 1; // on the current path
        path_.push_back(u);
        const auto it = adj_.find(u);
        if (it != adj_.end()) {
            for (const Edge* e : it->second) {
                const auto c = color_.find(e->to);
                if (c == color_.end()) {
                    dfs(e->to);
                } else if (c->second == 1) {
                    // Back edge: the chain from e->to around to u
                    // plus this include closes the cycle.
                    std::string chain;
                    bool in = false;
                    for (const std::string& p : path_) {
                        if (p == e->to)
                            in = true;
                        if (in)
                            chain += p + " -> ";
                    }
                    chain += e->to;
                    out_.push_back(
                        {"include-cycle", u, e->line,
                         "include cycle: " + chain +
                             "; the project include graph must stay "
                             "a DAG"});
                }
            }
        }
        path_.pop_back();
        color_[u] = 2;
    }

    std::map<std::string, std::vector<const Edge*>> adj_;
    std::map<std::string, int> color_;
    std::vector<std::string> path_;
    std::vector<Diagnostic>& out_;
};

// --- The passes -------------------------------------------------------

void
pass_layering(const std::vector<Edge>& edges,
              const LayerPolicy& policy,
              std::vector<Diagnostic>& out)
{
    for (const Edge& e : edges) {
        // tools/ may reach src/ only through declared public headers
        // (the analyzer must never grow a dependency on library
        // internals it is supposed to audit).
        if (e.from.rfind("tools/", 0) == 0 &&
            e.to.rfind("src/", 0) == 0) {
            if (policy.public_headers.count(e.to) == 0)
                out.push_back(
                    {"layer-violation", e.from, e.line,
                     "include edge " + e.from + " -> " + e.to +
                         " reaches src/ internals; tools/ may "
                         "include only headers declared 'public' in "
                         "the layering policy"});
            continue;
        }
        const std::string from_layer = layer_of(policy, e.from);
        const std::string to_layer = layer_of(policy, e.to);
        if (from_layer.empty() || to_layer.empty() ||
            from_layer == to_layer)
            continue;
        const auto it = policy.allowed.find(from_layer);
        const bool ok = it != policy.allowed.end() &&
                        it->second.count(to_layer) > 0;
        if (!ok)
            out.push_back(
                {"layer-violation", e.from, e.line,
                 "include edge " + e.from + " -> " + e.to +
                     " violates the layering policy: layer '" +
                     from_layer + "' may not include layer '" +
                     to_layer + "'"});
    }
}

void
pass_fault_sites(const std::vector<FileIndex>& index,
                 const std::vector<RegistryEntry>& registry,
                 bool dead_checks, std::vector<Diagnostic>& out)
{
    if (registry.empty())
        return; // no site table in scope: nothing to check against
    std::set<std::string> registered;
    for (const RegistryEntry& e : registry)
        registered.insert(e.name);
    std::set<std::string> probed;
    for (const FileIndex& idx : index)
        for (const FaultProbe& p : idx.fault_probes) {
            if (!p.literal)
                continue; // phase-1 fault-site already flagged it
            probed.insert(p.site);
            if (registered.count(p.site) == 0)
                out.push_back(
                    {"fault-site", idx.path, p.line,
                     "unknown fault site \"" + p.site +
                         "\"; register it in the "
                         "src/common/fault.hpp kFaultSites table so "
                         "schedules and docs can reach it"});
        }
    if (!dead_checks)
        return;
    for (const RegistryEntry& e : registry)
        if (probed.count(e.name) == 0)
            out.push_back(
                {"fault-site-dead", "src/common/fault.hpp", e.line,
                 "registered fault site \"" + e.name +
                     "\" is never probed; no schedule or chaos run "
                     "can reach it — delete the entry or add the "
                     "IMC_FAULT_PROBE"});
}

void
pass_obs_names(const std::vector<FileIndex>& index,
               const std::vector<RegistryEntry>& registry,
               bool dead_checks, std::vector<Diagnostic>& out)
{
    if (registry.empty())
        return;
    std::set<std::string> registered;
    for (const RegistryEntry& e : registry)
        registered.insert(e.name);
    std::set<std::string> used;
    for (const FileIndex& idx : index) {
        const bool enforced = idx.category == Category::Library;
        for (const ObsUse& u : idx.obs_uses) {
            if (idx.category != Category::Test)
                used.insert(u.pattern);
            if (enforced && registered.count(u.pattern) == 0)
                out.push_back(
                    {"obs-name", idx.path, u.line,
                     "obs name \"" + u.pattern +
                         "\" is not registered in the "
                         "src/common/obs.hpp kObsNames table; "
                         "register it (patterns use one '*' per "
                         "dynamic fragment) so dashboards can't "
                         "reference names that drifted"});
        }
    }
    if (!dead_checks)
        return;
    for (const RegistryEntry& e : registry)
        if (used.count(e.name) == 0)
            out.push_back(
                {"obs-name-dead", "src/common/obs.hpp", e.line,
                 "registered obs name \"" + e.name +
                     "\" is never recorded; delete the entry or add "
                     "the IMC_OBS_* site"});
}

// --- Orchestration ----------------------------------------------------

ProjectResult
run_project(std::vector<FileIndex> index, const ProjectOptions& opts,
            std::size_t files_reused)
{
    std::sort(index.begin(), index.end(),
              [](const FileIndex& a, const FileIndex& b) {
                  return a.path < b.path;
              });

    ProjectResult r;
    r.stats.files = index.size();
    r.stats.files_reused = files_reused;

    // Phase-1 findings (already suppression-filtered per file).
    std::map<std::string, const FileIndex*> by_path;
    for (const FileIndex& idx : index) {
        by_path[idx.path] = &idx;
        r.stats.suppressions += idx.suppressions.size();
        for (const Diagnostic& d : idx.diags)
            r.diags.push_back(d);
    }

    // Phase-2 passes.
    std::vector<Diagnostic> cross;
    const std::vector<Edge> edges = resolved_edges(index);
    r.stats.include_edges = edges.size();
    CycleFinder(edges, cross).run();

    LayerPolicy policy;
    if (!opts.layers_text.empty()) {
        policy = parse_layer_policy(opts.layers_text,
                                    opts.layers_path);
        for (const Diagnostic& d : policy.errors)
            cross.push_back(d);
        pass_layering(edges, policy, cross);
    }

    std::vector<RegistryEntry> fault_registry, obs_registry;
    for (const FileIndex& idx : index) {
        fault_registry.insert(fault_registry.end(),
                              idx.fault_sites.begin(),
                              idx.fault_sites.end());
        obs_registry.insert(obs_registry.end(),
                            idx.obs_names.begin(),
                            idx.obs_names.end());
    }
    pass_fault_sites(index, fault_registry, opts.dead_checks, cross);
    pass_obs_names(index, obs_registry, opts.dead_checks, cross);

    // Cross-file findings honor the same per-line suppressions and
    // the same --allow set as per-file ones.
    for (Diagnostic& d : cross) {
        if (opts.rules.disabled_rules.count(d.rule) > 0)
            continue;
        const auto it = by_path.find(d.path);
        if (it != by_path.end() &&
            detail::suppressed(*it->second, d))
            continue;
        r.diags.push_back(std::move(d));
    }

    std::sort(r.diags.begin(), r.diags.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    r.stats.diagnostics = r.diags.size();
    for (const Diagnostic& d : r.diags)
        if (d.rule == "lint-suppression")
            ++r.stats.suppressed_without_reason;
    r.index = std::move(index);
    return r;
}

} // namespace

LayerPolicy
parse_layer_policy(const std::string& text, const std::string& path)
{
    LayerPolicy policy;
    const std::vector<std::string> lines =
        detail::split_lines(text);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const int lineno = static_cast<int>(i) + 1;
        const std::string line = detail::trim(lines[i]);
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string kw;
        ss >> kw;
        auto fail = [&](const std::string& why) {
            policy.errors.push_back(
                {"layer-policy", path, lineno,
                 "bad policy line: " + why});
        };
        if (kw == "layer") {
            LayerPolicy::Layer l;
            ss >> l.name >> l.prefix;
            if (l.name.empty() || l.prefix.empty()) {
                fail("expected 'layer <name> <path-prefix>'");
                continue;
            }
            policy.layers.push_back(std::move(l));
        } else if (kw == "allow") {
            std::string from;
            ss >> from;
            if (from.empty()) {
                fail("expected 'allow <layer> <layer...>'");
                continue;
            }
            std::string to;
            bool any = false;
            bool ok = true;
            auto known = [&](const std::string& name) {
                for (const LayerPolicy::Layer& l : policy.layers)
                    if (l.name == name)
                        return true;
                return false;
            };
            if (!known(from)) {
                fail("unknown layer '" + from +
                     "' (declare it with 'layer' first)");
                continue;
            }
            while (ss >> to) {
                if (!known(to)) {
                    fail("unknown layer '" + to +
                         "' (declare it with 'layer' first)");
                    ok = false;
                    break;
                }
                policy.allowed[from].insert(to);
                any = true;
            }
            if (ok && !any)
                fail("expected 'allow <layer> <layer...>'");
        } else if (kw == "public") {
            std::string p;
            ss >> p;
            if (p.empty()) {
                fail("expected 'public <header-path>'");
                continue;
            }
            policy.public_headers.insert(p);
        } else {
            fail("unknown directive '" + kw +
                 "' (expected layer/allow/public)");
        }
    }
    return policy;
}

ProjectResult
analyze_files(
    const std::vector<std::pair<std::string, std::string>>& files,
    const ProjectOptions& opts)
{
    std::map<std::string, const std::string*> by_path;
    for (const auto& [path, content] : files)
        by_path[path] = &content;
    std::vector<FileIndex> index;
    index.reserve(files.size());
    for (const auto& [path, content] : files) {
        std::string sibling;
        const std::size_t dot = path.rfind('.');
        if (dot != std::string::npos &&
            (path.substr(dot) == ".cpp" ||
             path.substr(dot) == ".cc")) {
            const auto it =
                by_path.find(path.substr(0, dot) + ".hpp");
            if (it != by_path.end())
                sibling = *it->second;
        }
        index.push_back(
            index_content(path, content, sibling, opts.rules));
    }
    return run_project(std::move(index), opts, 0);
}

ProjectResult
analyze_tree(const std::string& root_dir,
             const std::vector<std::string>& roots,
             const ProjectOptions& opts,
             const std::string& cache_path)
{
    const fs::path root = root_dir.empty() ? fs::path(".")
                                           : fs::path(root_dir);
    ProjectOptions effective = opts;
    if (effective.layers_text.empty()) {
        const fs::path policy = root / "tools/imc_lint/layers.txt";
        if (fs::is_regular_file(policy))
            effective.layers_text =
                detail::read_file(policy.string());
    }

    std::vector<std::string> files = lintable_files(root_dir, roots);
    // The registry headers always participate (a subset run that
    // probes a site still needs the table to check it against).
    for (const char* reg :
         {"src/common/fault.hpp", "src/common/obs.hpp"}) {
        if (std::find(files.begin(), files.end(), reg) ==
                files.end() &&
            fs::is_regular_file(root / reg))
            files.push_back(reg);
    }
    std::sort(files.begin(), files.end());

    std::map<std::string, FileIndex> cache;
    if (!cache_path.empty())
        cache = detail::load_cache(cache_path, effective.rules);

    std::size_t reused = 0;
    std::vector<FileIndex> index;
    index.reserve(files.size());
    for (const std::string& rel : files) {
        const std::string content =
            detail::read_file((root / rel).string());
        std::string sibling;
        const std::size_t dot = rel.rfind('.');
        if (dot != std::string::npos &&
            (rel.substr(dot) == ".cpp" || rel.substr(dot) == ".cc")) {
            const fs::path header =
                root / (rel.substr(0, dot) + ".hpp");
            if (fs::is_regular_file(header))
                sibling = detail::read_file(header.string());
        }
        const std::uint64_t h = content_hash(content);
        const std::uint64_t sh =
            sibling.empty() ? 0 : content_hash(sibling);
        const auto it = cache.find(rel);
        if (it != cache.end() && it->second.content_hash == h &&
            it->second.sibling_hash == sh) {
            index.push_back(it->second);
            ++reused;
            continue;
        }
        index.push_back(
            index_content(rel, content, sibling, effective.rules));
    }

    if (!cache_path.empty())
        detail::save_cache(cache_path, index, effective.rules);
    return run_project(std::move(index), effective, reused);
}

// --- Output -----------------------------------------------------------

namespace {

std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
write_sarif(std::ostream& os, const ProjectResult& r)
{
    os << "{\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"runs\": [\n    {\n"
       << "      \"tool\": {\n        \"driver\": {\n"
       << "          \"name\": \"imc-lint\",\n"
       << "          \"rules\": [\n";
    bool first = true;
    for (const auto& [id, desc] : rule_descriptions()) {
        os << (first ? "" : ",\n") << "            {\"id\": \""
           << json_escape(id) << "\", \"shortDescription\": {\"text\": \""
           << json_escape(desc) << "\"}}";
        first = false;
    }
    os << "\n          ]\n        }\n      },\n"
       << "      \"results\": [\n";
    first = true;
    for (const Diagnostic& d : r.diags) {
        os << (first ? "" : ",\n") << "        {\"ruleId\": \""
           << json_escape(d.rule)
           << "\", \"level\": \"error\", \"message\": {\"text\": \""
           << json_escape(d.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << json_escape(d.path)
           << "\"}, \"region\": {\"startLine\": "
           << (d.line > 0 ? d.line : 1) << "}}}]}";
        first = false;
    }
    os << "\n      ]\n    }\n  ]\n}\n";
}

void
write_include_dot(std::ostream& os, const ProjectResult& r)
{
    // Cluster nodes by directory so the layering is visible at a
    // glance; edges are the resolved project includes.
    const std::vector<Edge> edges = resolved_edges(r.index);
    std::map<std::string, std::vector<std::string>> clusters;
    for (const FileIndex& idx : r.index) {
        const std::size_t slash = idx.path.rfind('/');
        const std::string dir = slash == std::string::npos
                                    ? std::string(".")
                                    : idx.path.substr(0, slash);
        clusters[dir].push_back(idx.path);
    }
    os << "digraph includes {\n  rankdir=LR;\n"
       << "  node [shape=box, fontsize=10];\n";
    std::size_t n = 0;
    for (const auto& [dir, nodes] : clusters) {
        os << "  subgraph cluster_" << n++ << " {\n    label=\""
           << dir << "\";\n";
        for (const std::string& p : nodes)
            os << "    \"" << p << "\";\n";
        os << "  }\n";
    }
    for (const Edge& e : edges)
        os << "  \"" << e.from << "\" -> \"" << e.to << "\";\n";
    os << "}\n";
}

void
write_stats(std::ostream& os, const ProjectStats& s)
{
    os << "files " << s.files << "\n"
       << "files_reused " << s.files_reused << "\n"
       << "include_edges " << s.include_edges << "\n"
       << "diagnostics " << s.diagnostics << "\n"
       << "suppressions " << s.suppressions << "\n"
       << "suppressed_without_reason " << s.suppressed_without_reason
       << "\n";
}

} // namespace imc::lint
