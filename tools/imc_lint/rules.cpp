#include "lint.hpp"

#include <algorithm>
#include <cstddef>

/**
 * @file
 * The rule implementations. Each rule is a free function over a
 * FileContext appending Diagnostics; run_rules() dispatches by file
 * category. Everything works on the token stream from lexer.cpp, so
 * comments and string literals can never fake a violation — with the
 * exception of header-guard and include-order, which are line-based
 * because preprocessor structure is.
 */

namespace imc::lint {

namespace {

using Tokens = std::vector<Token>;

bool
is_ident(const Token& t, const char* text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

/**
 * True when tokens[i] is used as a function call: followed by '(',
 * not a member access (x.time(...)), not a declaration (the previous
 * token is a type name), and qualified — if at all — by std or the
 * global namespace. C++ keywords that legally precede a call keep
 * counting as calls (return rand();).
 */
bool
is_call(const Tokens& toks, std::size_t i)
{
    if (i + 1 >= toks.size() || toks[i + 1].text != "(")
        return false;
    if (i == 0)
        return true;
    const Token& prev = toks[i - 1];
    if (prev.text == "." || prev.text == "->")
        return false;
    if (prev.text == "::") {
        if (i < 2)
            return true; // ::rand() — global qualifier
        const Token& qual = toks[i - 2];
        return is_ident(qual, "std");
    }
    if (prev.kind == TokKind::Ident) {
        // "double time(" is a declaration; "return time(" a call.
        static const std::set<std::string> kCallPrefixKeywords = {
            "return", "co_return", "co_yield", "throw", "case",
            "else",   "do",        "and",      "or",    "not"};
        return kCallPrefixKeywords.count(prev.text) > 0;
    }
    // '>' closes a template type: "std::vector<int> f(" declares.
    return prev.text != ">";
}

void
rule_determinism_rand(const FileContext& ctx,
                      std::vector<Diagnostic>& out)
{
    static const std::set<std::string> kBannedCalls = {
        "rand",     "srand",        "rand_r",    "drand48",
        "lrand48",  "mrand48",      "time",      "clock",
        "gettimeofday", "localtime", "gmtime"};
    // Banned in any position (types / static members).
    static const std::set<std::string> kBannedNames = {
        "random_device", "system_clock"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        if (kBannedNames.count(t.text) > 0 &&
            !(i > 0 && (toks[i - 1].text == "." ||
                        toks[i - 1].text == "->"))) {
            out.push_back({"determinism-rand", ctx.path, t.line,
                           "'" + t.text +
                               "' is nondeterministic across runs; "
                               "derive randomness from imc::Rng "
                               "seeds so figures stay reproducible"});
            continue;
        }
        if (kBannedCalls.count(t.text) > 0 && is_call(toks, i)) {
            out.push_back({"determinism-rand", ctx.path, t.line,
                           "call to '" + t.text +
                               "' injects wall-clock/libc state; "
                               "recorded figures must depend only on "
                               "seeds"});
        }
        // "random" only when explicitly ::random or std::random.
        if (t.text == "random" && i >= 1 && toks[i - 1].text == "::" &&
            is_call(toks, i)) {
            out.push_back({"determinism-rand", ctx.path, t.line,
                           "call to 'random' injects libc RNG state; "
                           "use imc::Rng"});
        }
    }
}

/**
 * Collect names declared with an unordered_map/unordered_set type in
 * @p toks: after the template argument list closes, the next
 * identifier is the variable. Misses aliases on purpose — the rule
 * is a tripwire for the common direct case, not alias chasing.
 */
std::set<std::string>
unordered_decl_names(const Tokens& toks)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!is_ident(toks[i], "unordered_map") &&
            !is_ident(toks[i], "unordered_set"))
            continue;
        std::size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "<")
            continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == ">") {
                if (--depth == 0) {
                    ++j;
                    break;
                }
            } else if (toks[j].text == ">>") {
                depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            }
        }
        // Skip reference/pointer/cv tokens between the type and the
        // declared name: "const unordered_map<...>& weights".
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "&&" ||
                toks[j].text == "*" || is_ident(toks[j], "const")))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::Ident)
            names.insert(toks[j].text);
    }
    return names;
}

void
rule_determinism_unordered_iter(const FileContext& ctx,
                                std::vector<Diagnostic>& out)
{
    const Tokens& toks = ctx.lex.tokens;
    std::set<std::string> names = unordered_decl_names(toks);
    names.insert(ctx.extra_unordered_names.begin(),
                 ctx.extra_unordered_names.end());
    if (names.empty())
        return;
    auto flag = [&](const std::string& name, int line) {
        out.push_back(
            {"determinism-unordered-iter", ctx.path, line,
             "iteration over unordered container '" + name +
                 "' has unspecified order; sort keys first or use an "
                 "ordered container where order can reach output"});
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        // Range-for: for ( ... : NAME ) at paren depth 1.
        if (is_ident(toks[i], "for") && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            int depth = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                if (toks[j].text == "(")
                    ++depth;
                else if (toks[j].text == ")") {
                    if (--depth == 0)
                        break;
                } else if (toks[j].text == ":" && depth == 1) {
                    for (std::size_t k = j + 1;
                         k < toks.size() && toks[k].text != ")"; ++k) {
                        if (toks[k].kind == TokKind::Ident &&
                            names.count(toks[k].text) > 0)
                            flag(toks[k].text, toks[k].line);
                    }
                    break;
                }
            }
        }
        // Explicit iterator walk: NAME.begin() / NAME.cbegin().
        if (toks[i].kind == TokKind::Ident &&
            names.count(toks[i].text) > 0 && i + 2 < toks.size() &&
            (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
            (is_ident(toks[i + 2], "begin") ||
             is_ident(toks[i + 2], "cbegin"))) {
            flag(toks[i].text, toks[i].line);
        }
    }
}

void
rule_banned_number_parse(const FileContext& ctx,
                         std::vector<Diagnostic>& out)
{
    static const std::set<std::string> kBanned = {
        "atoi",    "atof",    "atol",    "atoll",  "strtol",
        "strtoul", "strtoll", "strtoull", "strtod", "strtof",
        "sscanf"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Ident &&
            kBanned.count(toks[i].text) > 0 && is_call(toks, i)) {
            out.push_back(
                {"banned-number-parse", ctx.path, toks[i].line,
                 "'" + toks[i].text +
                     "' accepts garbage silently; parse through the "
                     "strict Cli/serialize helpers that reject "
                     "malformed input by flag name"});
        }
    }
}

void
rule_banned_printf(const FileContext& ctx,
                   std::vector<Diagnostic>& out)
{
    static const std::set<std::string> kBanned = {
        "printf",  "fprintf",  "sprintf",  "snprintf", "vprintf",
        "vfprintf", "vsnprintf", "puts",    "fputs",    "putchar",
        "fputc"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Ident &&
            kBanned.count(toks[i].text) > 0 && is_call(toks, i)) {
            out.push_back({"banned-printf", ctx.path, toks[i].line,
                           "'" + toks[i].text +
                               "' in library code bypasses the "
                               "stream-based output layer; return "
                               "strings or take a std::ostream&"});
        }
    }
}

void
rule_banned_new_delete(const FileContext& ctx,
                       std::vector<Diagnostic>& out)
{
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (is_ident(toks[i], "new")) {
            out.push_back({"banned-new-delete", ctx.path,
                           toks[i].line,
                           "naked 'new'; use std::make_unique / "
                           "std::make_shared or a container"});
        } else if (is_ident(toks[i], "delete")) {
            // "= delete" declares a deleted function; that is the
            // one legitimate spelling.
            if (i > 0 && toks[i - 1].text == "=")
                continue;
            out.push_back({"banned-new-delete", ctx.path,
                           toks[i].line,
                           "naked 'delete'; ownership belongs to "
                           "RAII types, not call sites"});
        }
    }
}

void
rule_config_error_context(const FileContext& ctx,
                          std::vector<Diagnostic>& out)
{
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!is_ident(toks[i], "throw") ||
            !is_ident(toks[i + 1], "ConfigError") ||
            toks[i + 2].text != "(")
            continue;
        bool has_context = false;
        int depth = 0;
        for (std::size_t j = i + 2; j < toks.size(); ++j) {
            if (toks[j].text == "(") {
                ++depth;
            } else if (toks[j].text == ")") {
                if (--depth == 0)
                    break;
            } else if (toks[j].kind == TokKind::Ident) {
                // Identifiers splice runtime values in; std::string
                // scaffolding alone does not.
                if (toks[j].text != "std" && toks[j].text != "string")
                    has_context = true;
            } else if (toks[j].kind == TokKind::String &&
                       toks[j].text.find("--") != std::string::npos) {
                has_context = true; // names the offending flag
            }
        }
        if (!has_context) {
            out.push_back(
                {"config-error-context", ctx.path, toks[i].line,
                 "ConfigError without the offending flag/value; the "
                 "user must see WHAT input was bad, not just that "
                 "something was"});
        }
    }
}

std::string
expected_guard(const std::string& path)
{
    std::string p = path;
    if (p.rfind("src/", 0) == 0)
        p = p.substr(4);
    std::string guard = "IMC_";
    for (const char c : p) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard;
}

bool
is_blank(const std::string& s)
{
    return s.find_first_not_of(" \t\r") == std::string::npos;
}

void
rule_header_guard(const FileContext& ctx,
                  std::vector<Diagnostic>& out)
{
    if (ctx.path.size() < 4 ||
        ctx.path.compare(ctx.path.size() - 4, 4, ".hpp") != 0)
        return;
    const std::string guard = expected_guard(ctx.path);
    // First two preprocessor directives must open the guard.
    std::vector<std::pair<int, std::string>> directives;
    for (std::size_t i = 0;
         i < ctx.lines.size() && directives.size() < 2; ++i) {
        const std::string& l = ctx.lines[i];
        const std::size_t pos = l.find_first_not_of(" \t");
        if (pos != std::string::npos && l[pos] == '#')
            directives.emplace_back(static_cast<int>(i) + 1,
                                    l.substr(pos));
    }
    const std::string want_ifndef = "#ifndef " + guard;
    const std::string want_define = "#define " + guard;
    if (directives.empty() || directives[0].second != want_ifndef) {
        out.push_back({"header-guard", ctx.path,
                       directives.empty() ? 1 : directives[0].first,
                       "header must open with '" + want_ifndef + "'"});
        return; // the rest would cascade
    }
    if (directives.size() < 2 ||
        directives[1].second != want_define) {
        out.push_back({"header-guard", ctx.path,
                       directives.size() < 2 ? directives[0].first
                                             : directives[1].first,
                       "'" + want_ifndef + "' must be followed by '" +
                           want_define + "'"});
    }
    // Last non-blank line closes it, naming the guard.
    for (std::size_t i = ctx.lines.size(); i > 0; --i) {
        const std::string& l = ctx.lines[i - 1];
        if (is_blank(l))
            continue;
        if (l.rfind("#endif", 0) != 0 ||
            l.find(guard) == std::string::npos) {
            out.push_back({"header-guard", ctx.path,
                           static_cast<int>(i),
                           "header must close with '#endif // " +
                               guard + "'"});
        }
        break;
    }
}

void
rule_include_order(const FileContext& ctx,
                   std::vector<Diagnostic>& out)
{
    // Convention across the tree: an optional leading quoted group
    // (the file's own header), then every <system> include, then
    // every "project" include — i.e. the kinds sequence must match
    // Q* A* Q*. An angle include after the project group interleaves
    // the groups.
    int phase = 0; // 0: leading Q, 1: A, 2: trailing Q
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& l = ctx.lines[i];
        std::size_t pos = l.find_first_not_of(" \t");
        if (pos == std::string::npos ||
            l.compare(pos, 8, "#include") != 0)
            continue;
        pos = l.find_first_of("<\"", pos + 8);
        if (pos == std::string::npos)
            continue; // computed include; out of scope
        const bool angle = l[pos] == '<';
        if (angle) {
            if (phase == 0)
                phase = 1;
            else if (phase == 2)
                out.push_back(
                    {"include-order", ctx.path,
                     static_cast<int>(i) + 1,
                     "<system> include after the \"project\" "
                     "include group; order is own header, <system>, "
                     "then \"project\""});
        } else {
            if (phase == 1)
                phase = 2;
        }
    }
}

void
rule_obs_gate(const FileContext& ctx, std::vector<Diagnostic>& out)
{
    // The obs implementation itself is the one place allowed to
    // spell the functions out (it defines the macros).
    if (ctx.path.rfind("src/common/obs.", 0) == 0)
        return;
    static const std::set<std::string> kGated = {
        "count",   "gauge_set",     "gauge_max",
        "observe", "trace_counter", "Span"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (is_ident(toks[i], "obs") && toks[i + 1].text == "::" &&
            toks[i + 2].kind == TokKind::Ident &&
            kGated.count(toks[i + 2].text) > 0) {
            out.push_back(
                {"obs-gate", ctx.path, toks[i].line,
                 "direct call to obs::" + toks[i + 2].text +
                     "; use the IMC_OBS_* macro so IMC_OBS_DISABLED "
                     "builds never evaluate the arguments"});
        }
    }
}

void
rule_fault_gate(const FileContext& ctx, std::vector<Diagnostic>& out)
{
    // The fault implementation itself is the one place allowed to
    // spell the probe entry points out (it defines the macros);
    // control-plane calls (arm/disarm/Session/injected_count) are
    // not probes and stay un-gated.
    if (ctx.path.rfind("src/common/fault.", 0) == 0)
        return;
    static const std::set<std::string> kGated = {"armed", "probe"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (is_ident(toks[i], "fault") && toks[i + 1].text == "::" &&
            toks[i + 2].kind == TokKind::Ident &&
            kGated.count(toks[i + 2].text) > 0) {
            out.push_back(
                {"fault-gate", ctx.path, toks[i].line,
                 "direct call to fault::" + toks[i + 2].text +
                     "; use IMC_FAULT_ARMED()/IMC_FAULT_PROBE() so "
                     "IMC_FAULT_DISABLED builds fold every probe to "
                     "a constant"});
        }
    }
}

void
rule_fault_site(const FileContext& ctx, std::vector<Diagnostic>& out)
{
    // The fault header's macro definition spells the forwarded
    // arguments as identifiers.
    if (ctx.path.rfind("src/common/fault.", 0) == 0)
        return;
    // Every probe must name a registered injection site so armed
    // schedules, the chaos CI job, and the site table in
    // src/common/fault.hpp stay in sync with the code. Adding a probe
    // means extending this set (and the fault.hpp table) in the same
    // change.
    static const std::set<std::string> kKnownSites = {
        "run.exec",    "registry.cache.load", "sim.crash",
        "sched.admit", "sched.evict"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!is_ident(toks[i], "IMC_FAULT_PROBE") ||
            toks[i + 1].text != "(")
            continue;
        const Token& site = toks[i + 2];
        if (site.kind != TokKind::String) {
            out.push_back(
                {"fault-site", ctx.path, toks[i].line,
                 "IMC_FAULT_PROBE site must be a string literal "
                 "(fault schedules and docs index sites by name)"});
        } else if (kKnownSites.count(site.text) == 0) {
            out.push_back(
                {"fault-site", ctx.path, site.line,
                 "unknown fault site \"" + site.text +
                     "\"; register it in the src/common/fault.hpp "
                     "site table and imc-lint's known-site list"});
        }
    }
}

} // namespace

std::set<std::string>
unordered_decl_names_in(const std::string& content)
{
    return unordered_decl_names(lex(content).tokens);
}

const std::map<std::string, std::string>&
rule_descriptions()
{
    static const std::map<std::string, std::string> kRules = {
        {"determinism-rand",
         "no wall-clock or libc randomness in figure-feeding code"},
        {"determinism-unordered-iter",
         "no iteration over unordered containers"},
        {"banned-number-parse",
         "no atoi/atof/strtol-family parsing"},
        {"banned-printf",
         "no printf-family output in library code"},
        {"banned-new-delete", "no naked new/delete"},
        {"config-error-context",
         "throw ConfigError must embed the offending flag/value"},
        {"header-guard",
         "guards named IMC_<PATH>_HPP with annotated #endif"},
        {"include-order",
         "own header, then <system>, then \"project\" includes"},
        {"obs-gate",
         "obs recording only via the gated IMC_OBS_* macros"},
        {"fault-gate",
         "fault probes only via the gated IMC_FAULT_* macros"},
        {"fault-site",
         "IMC_FAULT_PROBE sites must be registered string literals"},
        {"lint-suppression",
         "suppressions must name a known rule and be justified"},
    };
    return kRules;
}

std::vector<Diagnostic>
run_rules(const FileContext& ctx, const Options& opts)
{
    std::vector<Diagnostic> out;
    const bool lib = ctx.category == Category::Library;
    const bool figure_feeding = lib || ctx.category == Category::Bench ||
                                ctx.category == Category::Example;
    const bool enabled_det =
        figure_feeding || ctx.category == Category::Tool;
    if (enabled_det)
        rule_determinism_rand(ctx, out);
    if (figure_feeding)
        rule_determinism_unordered_iter(ctx, out);
    rule_banned_number_parse(ctx, out);
    if (lib)
        rule_banned_printf(ctx, out);
    rule_banned_new_delete(ctx, out);
    rule_config_error_context(ctx, out);
    rule_header_guard(ctx, out);
    rule_include_order(ctx, out);
    if (lib) {
        rule_obs_gate(ctx, out);
        rule_fault_gate(ctx, out);
    }
    rule_fault_site(ctx, out);
    if (!opts.disabled_rules.empty()) {
        out.erase(std::remove_if(
                      out.begin(), out.end(),
                      [&](const Diagnostic& d) {
                          return opts.disabled_rules.count(d.rule) > 0;
                      }),
                  out.end());
    }
    return out;
}

} // namespace imc::lint
