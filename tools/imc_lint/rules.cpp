#include "internal.hpp"
#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <optional>

/**
 * @file
 * The per-file rule implementations plus the token-stream extraction
 * that feeds the phase-2 project passes. Each rule is a free function
 * over a FileContext appending Diagnostics; run_rules() dispatches by
 * file category. Everything works on the token stream from lexer.cpp,
 * so comments and string literals can never fake a violation — with
 * the exception of header-guard and include-order, which are
 * line-based because preprocessor structure is.
 */

namespace imc::lint {

namespace {

using Tokens = std::vector<Token>;

bool
is_ident(const Token& t, const char* text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

std::string
lower(const std::string& s)
{
    std::string out = s;
    for (char& c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/**
 * True when tokens[i] is used as a function call: followed by '(',
 * not a member access (x.time(...)), not a declaration (the previous
 * token is a type name), and qualified — if at all — by std or the
 * global namespace. C++ keywords that legally precede a call keep
 * counting as calls (return rand();).
 */
bool
is_call(const Tokens& toks, std::size_t i)
{
    if (i + 1 >= toks.size() || toks[i + 1].text != "(")
        return false;
    if (i == 0)
        return true;
    const Token& prev = toks[i - 1];
    if (prev.text == "." || prev.text == "->")
        return false;
    if (prev.text == "::") {
        if (i < 2)
            return true; // ::rand() — global qualifier
        const Token& qual = toks[i - 2];
        return is_ident(qual, "std");
    }
    if (prev.kind == TokKind::Ident) {
        // "double time(" is a declaration; "return time(" a call.
        static const std::set<std::string> kCallPrefixKeywords = {
            "return", "co_return", "co_yield", "throw", "case",
            "else",   "do",        "and",      "or",    "not"};
        return kCallPrefixKeywords.count(prev.text) > 0;
    }
    // '>' closes a template type: "std::vector<int> f(" declares.
    return prev.text != ">";
}

void
rule_determinism_rand(const FileContext& ctx,
                      std::vector<Diagnostic>& out)
{
    static const std::set<std::string> kBannedCalls = {
        "rand",     "srand",        "rand_r",    "drand48",
        "lrand48",  "mrand48",      "time",      "clock",
        "gettimeofday", "localtime", "gmtime"};
    // Banned in any position (types / static members).
    static const std::set<std::string> kBannedNames = {
        "random_device", "system_clock"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        if (kBannedNames.count(t.text) > 0 &&
            !(i > 0 && (toks[i - 1].text == "." ||
                        toks[i - 1].text == "->"))) {
            out.push_back({"determinism-rand", ctx.path, t.line,
                           "'" + t.text +
                               "' is nondeterministic across runs; "
                               "derive randomness from imc::Rng "
                               "seeds so figures stay reproducible"});
            continue;
        }
        if (kBannedCalls.count(t.text) > 0 && is_call(toks, i)) {
            out.push_back({"determinism-rand", ctx.path, t.line,
                           "call to '" + t.text +
                               "' injects wall-clock/libc state; "
                               "recorded figures must depend only on "
                               "seeds"});
        }
        // "random" only when explicitly ::random or std::random.
        if (t.text == "random" && i >= 1 && toks[i - 1].text == "::" &&
            is_call(toks, i)) {
            out.push_back({"determinism-rand", ctx.path, t.line,
                           "call to 'random' injects libc RNG state; "
                           "use imc::Rng"});
        }
    }
}

/**
 * Collect names declared with an unordered_map/unordered_set type in
 * @p toks: after the template argument list closes, the next
 * identifier is the variable. Misses aliases on purpose — the taint
 * pass is a tripwire for the common direct case, not alias chasing.
 */
std::set<std::string>
unordered_decl_names(const Tokens& toks)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!is_ident(toks[i], "unordered_map") &&
            !is_ident(toks[i], "unordered_set"))
            continue;
        std::size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "<")
            continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == ">") {
                if (--depth == 0) {
                    ++j;
                    break;
                }
            } else if (toks[j].text == ">>") {
                depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            }
        }
        // Skip reference/pointer/cv tokens between the type and the
        // declared name: "const unordered_map<...>& weights".
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "&&" ||
                toks[j].text == "*" || is_ident(toks[j], "const")))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::Ident)
            names.insert(toks[j].text);
    }
    return names;
}

// --- determinism-taint ------------------------------------------------
//
// An intra-function dataflow pass over the token stream. Lattice:
// a local name is either clean or tainted-with-a-reason; joins keep
// the first reason (deterministically — statements are visited in
// token order). Sources introduce taint, assignments/appends
// propagate it, std::sort/std::stable_sort sanitizes its arguments
// (the sort-then-emit idiom is the blessed fix), and a separate scan
// reports taint reaching a sink.
//
//   sources  unordered-container iteration (range-for or .begin()),
//            reinterpret_cast to an integer type, hashing 'this',
//            thread ids (this_thread::get_id, pthread_self, gettid)
//   sinks    stream insertion (serialized output), digest /
//            fingerprint / checksum values, LatencyRecorder-style
//            .add()/.record(), and RNG .fork() name arguments
//
// Scope is one function body: cross-function flows are out of reach
// by design (the pass must stay dependency-free and fast), which
// keeps false positives near zero at the cost of missing laundering
// through helpers — the same trade the per-file rules make.

struct TaintInfo {
    std::string why;
};

class TaintPass {
  public:
    TaintPass(const FileContext& ctx, std::vector<Diagnostic>& out)
        : ctx_(ctx), toks_(ctx.lex.tokens), out_(out)
    {
        unordered_ = unordered_decl_names(toks_);
        unordered_.insert(ctx.extra_unordered_names.begin(),
                          ctx.extra_unordered_names.end());
    }

    void run()
    {
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            if (toks_[i].text != "{" || toks_[i].kind != TokKind::Punct)
                continue;
            if (!opens_function(i))
                continue;
            const std::size_t end = match_brace(i);
            analyze_body(i, end);
            i = end;
        }
    }

  private:
    /** Specifier idents that may sit between ')' and the body '{'. */
    static bool is_specifier(const Token& t)
    {
        static const std::set<std::string> kSpec = {
            "const", "noexcept", "override", "final", "mutable"};
        return t.kind == TokKind::Ident && kSpec.count(t.text) > 0;
    }

    /** True when the '{' at @p i opens a function (or lambda) body. */
    bool opens_function(std::size_t i) const
    {
        if (i == 0)
            return false;
        std::size_t j = i - 1;
        while (j > 0 && is_specifier(toks_[j]))
            --j;
        if (toks_[j].text != ")")
            return false;
        // Find the matching '(' and look at what introduced it:
        // control-flow keywords open statement parens, not
        // signatures. Constructor init lists still end in ')' of the
        // last initializer, which is fine — the body is a body.
        int depth = 0;
        while (j > 0) {
            if (toks_[j].text == ")")
                ++depth;
            else if (toks_[j].text == "(" && --depth == 0)
                break;
            --j;
        }
        if (j == 0)
            return false;
        const Token& before = toks_[j - 1];
        static const std::set<std::string> kControl = {
            "if", "for", "while", "switch", "catch"};
        if (before.kind == TokKind::Ident &&
            kControl.count(before.text) > 0)
            return false;
        return before.kind == TokKind::Ident || before.text == "]";
    }

    std::size_t match_brace(std::size_t open) const
    {
        int depth = 0;
        for (std::size_t j = open; j < toks_.size(); ++j) {
            if (toks_[j].text == "{")
                ++depth;
            else if (toks_[j].text == "}" && --depth == 0)
                return j;
        }
        return toks_.size() - 1;
    }

    /** Token ranges of the ';'/'{'/'}'-delimited statements. */
    static std::vector<std::pair<std::size_t, std::size_t>>
    statements(const Tokens& toks, std::size_t open, std::size_t close)
    {
        std::vector<std::pair<std::size_t, std::size_t>> out;
        std::size_t start = open + 1;
        for (std::size_t j = open + 1; j < close; ++j) {
            const std::string& t = toks[j].text;
            if (t == ";" || t == "{" || t == "}") {
                if (j > start)
                    out.emplace_back(start, j);
                start = j + 1;
            }
        }
        if (close > start)
            out.emplace_back(start, close);
        return out;
    }

    /** Taint (if any) carried by the expression tokens [b, e). */
    std::optional<TaintInfo> expr_taint(std::size_t b,
                                        std::size_t e) const
    {
        for (std::size_t j = b; j < e; ++j) {
            const Token& t = toks_[j];
            if (t.kind != TokKind::Ident)
                continue;
            const auto it = tainted_.find(t.text);
            if (it != tainted_.end() &&
                !(j > b && (toks_[j - 1].text == "." ||
                            toks_[j - 1].text == "->")))
                return it->second;
            if (unordered_.count(t.text) > 0 && j + 2 < e &&
                (toks_[j + 1].text == "." ||
                 toks_[j + 1].text == "->") &&
                (is_ident(toks_[j + 2], "begin") ||
                 is_ident(toks_[j + 2], "cbegin") ||
                 is_ident(toks_[j + 2], "rbegin")))
                return TaintInfo{"iteration over unordered container "
                                 "'" +
                                 t.text + "'"};
            if (t.text == "reinterpret_cast" &&
                cast_targets_integer(j))
                return TaintInfo{"a pointer-to-integer cast"};
            if (lower(t.text).find("hash") != std::string::npos &&
                call_args_contain_this(j))
                return TaintInfo{"hashing 'this'"};
            if (t.text == "get_id" || t.text == "pthread_self" ||
                t.text == "gettid")
                return TaintInfo{"a thread id"};
        }
        return std::nullopt;
    }

    bool cast_targets_integer(std::size_t j) const
    {
        static const std::set<std::string> kIntTypes = {
            "uintptr_t", "intptr_t", "size_t",   "uint64_t",
            "uint32_t",  "unsigned", "long",     "int",
            "int64_t",   "ptrdiff_t"};
        if (j + 1 >= toks_.size() || toks_[j + 1].text != "<")
            return false;
        for (std::size_t k = j + 2;
             k < toks_.size() && toks_[k].text != ">"; ++k)
            if (toks_[k].kind == TokKind::Ident &&
                kIntTypes.count(toks_[k].text) > 0)
                return true;
        return false;
    }

    /** Does the call opened near @p j pass 'this' as an argument? */
    bool call_args_contain_this(std::size_t j) const
    {
        // Allow std::hash<T*>{}(p): skip up to a handful of tokens to
        // the first '(' and scan its depth-1 argument list.
        std::size_t k = j + 1;
        const std::size_t limit =
            std::min(toks_.size(), j + 12);
        while (k < limit && toks_[k].text != "(")
            ++k;
        if (k >= limit)
            return false;
        int depth = 0;
        for (; k < toks_.size(); ++k) {
            if (toks_[k].text == "(")
                ++depth;
            else if (toks_[k].text == ")") {
                if (--depth == 0)
                    return false;
            } else if (is_ident(toks_[k], "this"))
                return true;
        }
        return false;
    }

    static bool is_assign_op(const Token& t)
    {
        static const std::set<std::string> kOps = {
            "=",  "+=", "-=", "*=", "/=",  "%=",
            "&=", "|=", "^=", ">>=", "<<="};
        return t.kind == TokKind::Punct && kOps.count(t.text) > 0;
    }

    /** The declared/assigned name left of the op at @p op. */
    std::optional<std::string> lhs_name(std::size_t b,
                                        std::size_t op) const
    {
        std::size_t j = op;
        while (j > b) {
            --j;
            if (toks_[j].text == "]") { // arr[i] = ... → arr
                int depth = 0;
                while (j > b) {
                    if (toks_[j].text == "]")
                        ++depth;
                    else if (toks_[j].text == "[" && --depth == 0)
                        break;
                    --j;
                }
                continue;
            }
            if (toks_[j].kind == TokKind::Ident)
                return toks_[j].text;
            if (toks_[j].text != ")")
                return std::nullopt;
            return std::nullopt;
        }
        return std::nullopt;
    }

    void taint(const std::string& name, const TaintInfo& info)
    {
        if (tainted_.emplace(name, info).second)
            changed_ = true;
    }

    /** One propagation sweep over the body; sets changed_. */
    void propagate(std::size_t open, std::size_t close)
    {
        // Range-for headers: for (DECL : RANGE).
        for (std::size_t j = open + 1; j < close; ++j) {
            if (!is_ident(toks_[j], "for") || j + 1 >= close ||
                toks_[j + 1].text != "(")
                continue;
            int depth = 0;
            std::size_t colon = 0, rp = 0;
            for (std::size_t k = j + 1; k < close; ++k) {
                if (toks_[k].text == "(")
                    ++depth;
                else if (toks_[k].text == ")") {
                    if (--depth == 0) {
                        rp = k;
                        break;
                    }
                } else if (toks_[k].text == ":" && depth == 1)
                    colon = k;
            }
            if (colon == 0 || rp == 0)
                continue;
            // Ranging over an unordered container IS the iteration —
            // no .begin() spelling required.
            std::optional<TaintInfo> src;
            for (std::size_t k = colon + 1; k < rp && !src; ++k)
                if (toks_[k].kind == TokKind::Ident &&
                    unordered_.count(toks_[k].text) > 0 &&
                    !(k > colon + 1 &&
                      (toks_[k - 1].text == "." ||
                       toks_[k - 1].text == "->")))
                    src = TaintInfo{
                        "iteration over unordered container '" +
                        toks_[k].text + "'"};
            if (!src)
                src = expr_taint(colon + 1, rp);
            // Decl names: a structured binding's [a, b] idents, or
            // the last ident before the ':'.
            std::vector<std::string> decls;
            bool binding = false;
            for (std::size_t k = j + 2; k < colon; ++k) {
                if (toks_[k].text == "[")
                    binding = true;
                else if (toks_[k].text == "]")
                    break;
                else if (binding && toks_[k].kind == TokKind::Ident)
                    decls.push_back(toks_[k].text);
            }
            if (!binding) {
                for (std::size_t k = colon; k > j + 1; --k)
                    if (toks_[k - 1].kind == TokKind::Ident) {
                        decls.push_back(toks_[k - 1].text);
                        break;
                    }
            }
            for (const std::string& d : decls) {
                if (src)
                    taint(d, *src);
                else
                    // A range-for over a clean range is a fresh
                    // binding: it kills any taint a same-named
                    // earlier loop variable left behind.
                    tainted_.erase(d);
            }
        }
        // Straight-line statements.
        for (const auto& [b, e] : statements(toks_, open, close)) {
            // std::sort/std::stable_sort sanitizes its arguments —
            // emitting in sorted order IS the fix.
            for (std::size_t j = b; j < e; ++j) {
                if ((is_ident(toks_[j], "sort") ||
                     is_ident(toks_[j], "stable_sort")) &&
                    j + 1 < e && toks_[j + 1].text == "(") {
                    for (std::size_t k = j + 2;
                         k < e && toks_[k].text != ";"; ++k)
                        if (toks_[k].kind == TokKind::Ident &&
                            tainted_.erase(toks_[k].text) > 0)
                            changed_ = true;
                }
            }
            // Assignment / initialization.
            int depth = 0;
            for (std::size_t j = b; j < e; ++j) {
                if (toks_[j].text == "(" || toks_[j].text == "[")
                    ++depth;
                else if (toks_[j].text == ")" ||
                         toks_[j].text == "]")
                    --depth;
                else if (depth == 0 && is_assign_op(toks_[j])) {
                    const auto name = lhs_name(b, j);
                    const auto src = expr_taint(j + 1, e);
                    if (name && src)
                        taint(*name, *src);
                    break;
                }
            }
            // Container append: V.push_back(tainted) taints V.
            static const std::set<std::string> kAppend = {
                "push_back", "emplace_back", "insert",
                "emplace",   "push",         "append"};
            for (std::size_t j = b; j + 3 < e; ++j) {
                if (toks_[j].kind != TokKind::Ident ||
                    (toks_[j + 1].text != "." &&
                     toks_[j + 1].text != "->") ||
                    toks_[j + 2].kind != TokKind::Ident ||
                    kAppend.count(toks_[j + 2].text) == 0 ||
                    toks_[j + 3].text != "(")
                    continue;
                const auto src = expr_taint(j + 4, e);
                if (src)
                    taint(toks_[j].text, *src);
            }
        }
    }

    /** Names of declared ostream-like / recorder-like locals. */
    void harvest_decls(std::size_t b, std::size_t e)
    {
        static const std::set<std::string> kStreamTypes = {
            "ostream", "ostringstream", "stringstream", "ofstream"};
        for (std::size_t j = b; j < e; ++j) {
            const bool stream_ty =
                toks_[j].kind == TokKind::Ident &&
                kStreamTypes.count(toks_[j].text) > 0;
            const bool recorder_ty =
                is_ident(toks_[j], "LatencyRecorder");
            if (!stream_ty && !recorder_ty)
                continue;
            std::size_t k = j + 1;
            while (k < e &&
                   (toks_[k].text == "&" || toks_[k].text == "*" ||
                    toks_[k].text == "&&" ||
                    is_ident(toks_[k], "const")))
                ++k;
            if (k < e && toks_[k].kind == TokKind::Ident) {
                if (stream_ty)
                    streams_.insert(toks_[k].text);
                else
                    recorders_.insert(toks_[k].text);
            }
        }
    }

    void report(int line, const TaintInfo& info,
                const std::string& sink)
    {
        Diagnostic d{"determinism-taint", ctx_.path, line,
                     "value derived from " + info.why +
                         " flows into " + sink +
                         "; recorded output must be a pure function "
                         "of seeds and config — sort into an ordered "
                         "container or derive a stable key first"};
        for (const Diagnostic& prev : out_)
            if (prev == d)
                return;
        out_.push_back(std::move(d));
    }

    void scan_sinks(std::size_t open, std::size_t close)
    {
        for (const auto& [b, e] : statements(toks_, open, close)) {
            for (std::size_t j = b; j < e; ++j) {
                const Token& t = toks_[j];
                if (t.kind != TokKind::Ident)
                    continue;
                // Stream insertion.
                const bool stream =
                    streams_.count(t.text) > 0 || t.text == "cout" ||
                    t.text == "cerr" || t.text == "clog";
                if (stream && j + 1 < e &&
                    toks_[j + 1].text == "<<") {
                    if (const auto src = expr_taint(j + 2, e))
                        report(t.line, *src, "serialized output");
                    continue;
                }
                // Digest-ish assignment or call argument.
                const std::string lt = lower(t.text);
                const bool digest_name =
                    lt.find("digest") != std::string::npos ||
                    lt.find("fingerprint") != std::string::npos ||
                    lt.find("checksum") != std::string::npos;
                if (digest_name && j + 1 < e) {
                    if (is_assign_op(toks_[j + 1])) {
                        if (const auto src = expr_taint(j + 2, e))
                            report(t.line, *src, "a digest");
                    } else if (toks_[j + 1].text == "(") {
                        if (const auto src = expr_taint(j + 2, e))
                            report(t.line, *src, "a digest");
                    }
                    continue;
                }
                // Recorder .add()/.record()/.observe().
                const bool recorder =
                    recorders_.count(t.text) > 0 ||
                    lt.find("recorder") != std::string::npos;
                if (recorder && j + 3 < e &&
                    (toks_[j + 1].text == "." ||
                     toks_[j + 1].text == "->") &&
                    (is_ident(toks_[j + 2], "add") ||
                     is_ident(toks_[j + 2], "record") ||
                     is_ident(toks_[j + 2], "observe")) &&
                    toks_[j + 3].text == "(") {
                    if (const auto src = expr_taint(j + 4, e))
                        report(t.line, *src, "LatencyRecorder");
                    continue;
                }
                // RNG fork name.
                if (is_ident(t, "fork") && j > b &&
                    (toks_[j - 1].text == "." ||
                     toks_[j - 1].text == "->") &&
                    j + 1 < e && toks_[j + 1].text == "(") {
                    if (const auto src = expr_taint(j + 2, e))
                        report(t.line, *src, "an RNG fork name");
                }
            }
        }
    }

    void analyze_body(std::size_t open, std::size_t close)
    {
        tainted_.clear();
        streams_.clear();
        recorders_.clear();
        // Signature parameters participate (an ostream& parameter is
        // a sink; a tainted parameter cannot be known, so only decls
        // are harvested there).
        std::size_t sig = open;
        while (sig > 0 && is_specifier(toks_[sig - 1]))
            --sig;
        std::size_t lp = sig;
        int depth = 0;
        while (lp > 0) {
            --lp;
            if (toks_[lp].text == ")")
                ++depth;
            else if (toks_[lp].text == "(" && --depth == 0)
                break;
        }
        harvest_decls(lp, sig);
        harvest_decls(open + 1, close);
        for (int round = 0; round < 8; ++round) {
            changed_ = false;
            propagate(open, close);
            if (!changed_)
                break;
        }
        scan_sinks(open, close);
    }

    const FileContext& ctx_;
    const Tokens& toks_;
    std::vector<Diagnostic>& out_;
    std::set<std::string> unordered_;
    std::map<std::string, TaintInfo> tainted_;
    std::set<std::string> streams_;
    std::set<std::string> recorders_;
    bool changed_ = false;
};

void
rule_determinism_taint(const FileContext& ctx,
                       std::vector<Diagnostic>& out)
{
    TaintPass(ctx, out).run();
}

void
rule_banned_number_parse(const FileContext& ctx,
                         std::vector<Diagnostic>& out)
{
    static const std::set<std::string> kBanned = {
        "atoi",    "atof",    "atol",    "atoll",  "strtol",
        "strtoul", "strtoll", "strtoull", "strtod", "strtof",
        "sscanf"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Ident &&
            kBanned.count(toks[i].text) > 0 && is_call(toks, i)) {
            out.push_back(
                {"banned-number-parse", ctx.path, toks[i].line,
                 "'" + toks[i].text +
                     "' accepts garbage silently; parse through the "
                     "strict Cli/serialize helpers that reject "
                     "malformed input by flag name"});
        }
    }
}

void
rule_banned_printf(const FileContext& ctx,
                   std::vector<Diagnostic>& out)
{
    static const std::set<std::string> kBanned = {
        "printf",  "fprintf",  "sprintf",  "snprintf", "vprintf",
        "vfprintf", "vsnprintf", "puts",    "fputs",    "putchar",
        "fputc"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Ident &&
            kBanned.count(toks[i].text) > 0 && is_call(toks, i)) {
            out.push_back({"banned-printf", ctx.path, toks[i].line,
                           "'" + toks[i].text +
                               "' in library code bypasses the "
                               "stream-based output layer; return "
                               "strings or take a std::ostream&"});
        }
    }
}

void
rule_banned_new_delete(const FileContext& ctx,
                       std::vector<Diagnostic>& out)
{
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (is_ident(toks[i], "new")) {
            out.push_back({"banned-new-delete", ctx.path,
                           toks[i].line,
                           "naked 'new'; use std::make_unique / "
                           "std::make_shared or a container"});
        } else if (is_ident(toks[i], "delete")) {
            // "= delete" declares a deleted function; that is the
            // one legitimate spelling.
            if (i > 0 && toks[i - 1].text == "=")
                continue;
            out.push_back({"banned-new-delete", ctx.path,
                           toks[i].line,
                           "naked 'delete'; ownership belongs to "
                           "RAII types, not call sites"});
        }
    }
}

void
rule_config_error_context(const FileContext& ctx,
                          std::vector<Diagnostic>& out)
{
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!is_ident(toks[i], "throw") ||
            !is_ident(toks[i + 1], "ConfigError") ||
            toks[i + 2].text != "(")
            continue;
        bool has_context = false;
        int depth = 0;
        for (std::size_t j = i + 2; j < toks.size(); ++j) {
            if (toks[j].text == "(") {
                ++depth;
            } else if (toks[j].text == ")") {
                if (--depth == 0)
                    break;
            } else if (toks[j].kind == TokKind::Ident) {
                // Identifiers splice runtime values in; std::string
                // scaffolding alone does not.
                if (toks[j].text != "std" && toks[j].text != "string")
                    has_context = true;
            } else if (toks[j].kind == TokKind::String &&
                       toks[j].text.find("--") != std::string::npos) {
                has_context = true; // names the offending flag
            }
        }
        if (!has_context) {
            out.push_back(
                {"config-error-context", ctx.path, toks[i].line,
                 "ConfigError without the offending flag/value; the "
                 "user must see WHAT input was bad, not just that "
                 "something was"});
        }
    }
}

std::string
expected_guard(const std::string& path)
{
    std::string p = path;
    if (p.rfind("src/", 0) == 0)
        p = p.substr(4);
    std::string guard = "IMC_";
    for (const char c : p) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard;
}

bool
is_blank(const std::string& s)
{
    return s.find_first_not_of(" \t\r") == std::string::npos;
}

void
rule_header_guard(const FileContext& ctx,
                  std::vector<Diagnostic>& out)
{
    if (ctx.path.size() < 4 ||
        ctx.path.compare(ctx.path.size() - 4, 4, ".hpp") != 0)
        return;
    const std::string guard = expected_guard(ctx.path);
    // First two preprocessor directives must open the guard.
    std::vector<std::pair<int, std::string>> directives;
    for (std::size_t i = 0;
         i < ctx.lines.size() && directives.size() < 2; ++i) {
        const std::string& l = ctx.lines[i];
        const std::size_t pos = l.find_first_not_of(" \t");
        if (pos != std::string::npos && l[pos] == '#')
            directives.emplace_back(static_cast<int>(i) + 1,
                                    l.substr(pos));
    }
    const std::string want_ifndef = "#ifndef " + guard;
    const std::string want_define = "#define " + guard;
    if (directives.empty() || directives[0].second != want_ifndef) {
        out.push_back({"header-guard", ctx.path,
                       directives.empty() ? 1 : directives[0].first,
                       "header must open with '" + want_ifndef + "'"});
        return; // the rest would cascade
    }
    if (directives.size() < 2 ||
        directives[1].second != want_define) {
        out.push_back({"header-guard", ctx.path,
                       directives.size() < 2 ? directives[0].first
                                             : directives[1].first,
                       "'" + want_ifndef + "' must be followed by '" +
                           want_define + "'"});
    }
    // Last non-blank line closes it, naming the guard.
    for (std::size_t i = ctx.lines.size(); i > 0; --i) {
        const std::string& l = ctx.lines[i - 1];
        if (is_blank(l))
            continue;
        if (l.rfind("#endif", 0) != 0 ||
            l.find(guard) == std::string::npos) {
            out.push_back({"header-guard", ctx.path,
                           static_cast<int>(i),
                           "header must close with '#endif // " +
                               guard + "'"});
        }
        break;
    }
}

void
rule_include_order(const FileContext& ctx,
                   std::vector<Diagnostic>& out)
{
    // Convention across the tree: an optional leading quoted group
    // (the file's own header), then every <system> include, then
    // every "project" include — i.e. the kinds sequence must match
    // Q* A* Q*. An angle include after the project group interleaves
    // the groups.
    int phase = 0; // 0: leading Q, 1: A, 2: trailing Q
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string& l = ctx.lines[i];
        std::size_t pos = l.find_first_not_of(" \t");
        if (pos == std::string::npos ||
            l.compare(pos, 8, "#include") != 0)
            continue;
        pos = l.find_first_of("<\"", pos + 8);
        if (pos == std::string::npos)
            continue; // computed include; out of scope
        const bool angle = l[pos] == '<';
        if (angle) {
            if (phase == 0)
                phase = 1;
            else if (phase == 2)
                out.push_back(
                    {"include-order", ctx.path,
                     static_cast<int>(i) + 1,
                     "<system> include after the \"project\" "
                     "include group; order is own header, <system>, "
                     "then \"project\""});
        } else {
            if (phase == 1)
                phase = 2;
        }
    }
}

void
rule_obs_gate(const FileContext& ctx, std::vector<Diagnostic>& out)
{
    // The obs implementation itself is the one place allowed to
    // spell the functions out (it defines the macros).
    if (ctx.path.rfind("src/common/obs.", 0) == 0)
        return;
    static const std::set<std::string> kGated = {
        "count",   "gauge_set",     "gauge_max",
        "observe", "trace_counter", "Span"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (is_ident(toks[i], "obs") && toks[i + 1].text == "::" &&
            toks[i + 2].kind == TokKind::Ident &&
            kGated.count(toks[i + 2].text) > 0) {
            out.push_back(
                {"obs-gate", ctx.path, toks[i].line,
                 "direct call to obs::" + toks[i + 2].text +
                     "; use the IMC_OBS_* macro so IMC_OBS_DISABLED "
                     "builds never evaluate the arguments"});
        }
    }
}

void
rule_fault_gate(const FileContext& ctx, std::vector<Diagnostic>& out)
{
    // The fault implementation itself is the one place allowed to
    // spell the probe entry points out (it defines the macros);
    // control-plane calls (arm/disarm/Session/injected_count) are
    // not probes and stay un-gated.
    if (ctx.path.rfind("src/common/fault.", 0) == 0)
        return;
    static const std::set<std::string> kGated = {"armed", "probe"};
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (is_ident(toks[i], "fault") && toks[i + 1].text == "::" &&
            toks[i + 2].kind == TokKind::Ident &&
            kGated.count(toks[i + 2].text) > 0) {
            out.push_back(
                {"fault-gate", ctx.path, toks[i].line,
                 "direct call to fault::" + toks[i + 2].text +
                     "; use IMC_FAULT_ARMED()/IMC_FAULT_PROBE() so "
                     "IMC_FAULT_DISABLED builds fold every probe to "
                     "a constant"});
        }
    }
}

void
rule_fault_site(const FileContext& ctx, std::vector<Diagnostic>& out)
{
    // The fault header's macro definition spells the forwarded
    // arguments as identifiers.
    if (ctx.path.rfind("src/common/fault.", 0) == 0)
        return;
    // Literal-ness is checked here per file; membership in the
    // registered site table is the phase-2 fault-site cross-check
    // (project.cpp), which reads the table from fault.hpp itself
    // instead of a hardcoded copy.
    const Tokens& toks = ctx.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!is_ident(toks[i], "IMC_FAULT_PROBE") ||
            toks[i + 1].text != "(")
            continue;
        if (toks[i + 2].kind != TokKind::String) {
            out.push_back(
                {"fault-site", ctx.path, toks[i].line,
                 "IMC_FAULT_PROBE site must be a string literal "
                 "(fault schedules and docs index sites by name)"});
        }
    }
}

} // namespace

std::set<std::string>
unordered_decl_names_in(const std::string& content)
{
    return unordered_decl_names(lex(content).tokens);
}

const std::map<std::string, std::string>&
rule_descriptions()
{
    static const std::map<std::string, std::string> kRules = {
        {"determinism-rand",
         "no wall-clock or libc randomness in figure-feeding code"},
        {"determinism-taint",
         "unordered-iteration/pointer/thread-id values must not "
         "reach digests, serialized output, or RNG fork names"},
        {"banned-number-parse",
         "no atoi/atof/strtol-family parsing"},
        {"banned-printf",
         "no printf-family output in library code"},
        {"banned-new-delete", "no naked new/delete"},
        {"config-error-context",
         "throw ConfigError must embed the offending flag/value"},
        {"header-guard",
         "guards named IMC_<PATH>_HPP with annotated #endif"},
        {"include-order",
         "own header, then <system>, then \"project\" includes"},
        {"obs-gate",
         "obs recording only via the gated IMC_OBS_* macros"},
        {"fault-gate",
         "fault probes only via the gated IMC_FAULT_* macros"},
        {"fault-site",
         "IMC_FAULT_PROBE sites must be registered string literals"},
        {"fault-site-dead",
         "every registered fault site must be probed somewhere"},
        {"obs-name",
         "IMC_OBS_* names in src/ must be registered in kObsNames"},
        {"obs-name-dead",
         "every registered obs name must be recorded somewhere"},
        {"include-cycle", "the project include graph must be a DAG"},
        {"layer-violation",
         "include edges must respect the layering policy"},
        {"layer-policy", "tools/imc_lint/layers.txt must parse"},
        {"lint-suppression",
         "suppressions must name a known rule and be justified"},
    };
    return kRules;
}

std::vector<Diagnostic>
run_rules(const FileContext& ctx, const Options& opts)
{
    std::vector<Diagnostic> out;
    const bool lib = ctx.category == Category::Library;
    const bool figure_feeding = lib || ctx.category == Category::Bench ||
                                ctx.category == Category::Example;
    const bool enabled_det =
        figure_feeding || ctx.category == Category::Tool;
    if (enabled_det)
        rule_determinism_rand(ctx, out);
    if (figure_feeding)
        rule_determinism_taint(ctx, out);
    rule_banned_number_parse(ctx, out);
    if (lib)
        rule_banned_printf(ctx, out);
    rule_banned_new_delete(ctx, out);
    rule_config_error_context(ctx, out);
    rule_header_guard(ctx, out);
    rule_include_order(ctx, out);
    if (lib) {
        rule_obs_gate(ctx, out);
        rule_fault_gate(ctx, out);
    }
    rule_fault_site(ctx, out);
    if (!opts.disabled_rules.empty()) {
        out.erase(std::remove_if(
                      out.begin(), out.end(),
                      [&](const Diagnostic& d) {
                          return opts.disabled_rules.count(d.rule) > 0;
                      }),
                  out.end());
    }
    return out;
}

// --- Index extraction (phase 1 facts for the phase-2 passes) ----------

namespace detail {

std::vector<IncludeRef>
extract_includes(const std::vector<std::string>& lines)
{
    std::vector<IncludeRef> out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& l = lines[i];
        std::size_t pos = l.find_first_not_of(" \t");
        if (pos == std::string::npos || l[pos] != '#')
            continue;
        pos = l.find_first_not_of(" \t", pos + 1);
        if (pos == std::string::npos ||
            l.compare(pos, 7, "include") != 0)
            continue;
        pos = l.find_first_of("<\"", pos + 7);
        if (pos == std::string::npos)
            continue; // computed include; out of scope
        const bool angle = l[pos] == '<';
        const char close = angle ? '>' : '"';
        const std::size_t end = l.find(close, pos + 1);
        if (end == std::string::npos)
            continue;
        out.push_back({static_cast<int>(i) + 1,
                       l.substr(pos + 1, end - pos - 1), angle});
    }
    return out;
}

std::vector<FaultProbe>
extract_fault_probes(const LexResult& lex, const std::string& path)
{
    std::vector<FaultProbe> out;
    if (path.rfind("src/common/fault.", 0) == 0)
        return out; // the macro definition forwards idents
    const Tokens& toks = lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!is_ident(toks[i], "IMC_FAULT_PROBE") ||
            toks[i + 1].text != "(")
            continue;
        const Token& site = toks[i + 2];
        if (site.kind == TokKind::String)
            out.push_back({site.line, site.text, true});
        else
            out.push_back({toks[i].line, "", false});
    }
    return out;
}

namespace {

/**
 * Normalize the name-expression tokens [b, e) to a registry pattern:
 * literal fragments concatenate, each maximal run of dynamic tokens
 * becomes one '*'. String-machinery identifiers (std::to_string,
 * .c_str()) are plumbing, not values, and are skipped.
 */
std::string
name_pattern(const Tokens& toks, std::size_t b, std::size_t e)
{
    static const std::set<std::string> kPlumbing = {
        "std", "string", "to_string", "c_str"};
    std::string pat;
    bool star_open = false;
    bool any = false;
    for (std::size_t j = b; j < e; ++j) {
        const Token& t = toks[j];
        if (t.kind == TokKind::String) {
            pat += t.text;
            star_open = false;
            any = true;
        } else if ((t.kind == TokKind::Ident &&
                    kPlumbing.count(t.text) == 0) ||
                   t.kind == TokKind::Number) {
            if (!star_open) {
                pat += '*';
                star_open = true;
            }
            any = true;
        }
    }
    return any ? pat : "*";
}

} // namespace

std::vector<ObsUse>
extract_obs_uses(const LexResult& lex, const std::string& path)
{
    std::vector<ObsUse> out;
    const Tokens& toks = lex.tokens;
    const bool obs_impl = path.rfind("src/common/obs.", 0) == 0;
    if (path == "src/common/obs.hpp")
        return out; // macro definitions + the registry itself
    if (obs_impl) {
        // obs.cpp records through direct calls (it IS the layer);
        // collect literal first arguments so internal names like
        // obs.nonfinite_samples still participate in the registry
        // cross-check.
        static const std::set<std::string> kRecorders = {
            "count", "observe", "gauge_set", "gauge_max",
            "trace_counter"};
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (toks[i].kind == TokKind::Ident &&
                kRecorders.count(toks[i].text) > 0 &&
                toks[i + 1].text == "(" &&
                toks[i + 2].kind == TokKind::String)
                out.push_back(
                    {toks[i + 2].line, toks[i + 2].text});
        }
        return out;
    }
    // First macro argument (second for IMC_OBS_SPAN: arg one is the
    // span variable name).
    static const std::set<std::string> kNameFirst = {
        "IMC_OBS_COUNT",   "IMC_OBS_GAUGE_SET", "IMC_OBS_GAUGE_MAX",
        "IMC_OBS_OBSERVE", "IMC_OBS_TRACE_COUNTER"};
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            toks[i + 1].text != "(")
            continue;
        const bool first = kNameFirst.count(toks[i].text) > 0;
        const bool span = toks[i].text == "IMC_OBS_SPAN";
        if (!first && !span)
            continue;
        // The argument ends at the first ',' at depth 1 or at the
        // matching ')'.
        std::size_t b = i + 2, e = b;
        int depth = 1;
        int commas_to_skip = span ? 1 : 0;
        for (std::size_t j = i + 2; j < toks.size(); ++j) {
            if (toks[j].text == "(") {
                ++depth;
            } else if (toks[j].text == ")") {
                if (--depth == 0) {
                    e = j;
                    break;
                }
            } else if (toks[j].text == "," && depth == 1) {
                if (commas_to_skip > 0) {
                    --commas_to_skip;
                    b = j + 1;
                    continue;
                }
                e = j;
                break;
            }
        }
        if (e > b)
            out.push_back(
                {toks[i].line, name_pattern(toks, b, e)});
    }
    return out;
}

std::vector<RegistryEntry>
extract_registry_array(const LexResult& lex, const char* array_name)
{
    std::vector<RegistryEntry> out;
    const Tokens& toks = lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!is_ident(toks[i], array_name))
            continue;
        std::size_t j = i + 1;
        while (j < toks.size() && toks[j].text != "{" &&
               toks[j].text != ";")
            ++j;
        if (j >= toks.size() || toks[j].text != "{")
            return out;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "{")
                ++depth;
            else if (toks[j].text == "}") {
                if (--depth == 0)
                    break;
            } else if (toks[j].kind == TokKind::String)
                out.push_back({toks[j].line, toks[j].text});
        }
        return out;
    }
    return out;
}

} // namespace detail

} // namespace imc::lint
